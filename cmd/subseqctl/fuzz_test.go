package main

import (
	"testing"
	"unicode/utf8"

	"repro/internal/seq"
)

// FuzzParseQueryRequest hammers the element-typed HTTP query decoder with
// arbitrary request bodies, at every element type the registry serves.
// The decoder fronts every /query/* endpoint, so the invariants are
// absolute: it must never panic, and it must never hand back a nil
// sequence without an error (a server would then index into it). The seed
// corpus under testdata/fuzz/FuzzParseQueryRequest pins the interesting
// shapes: valid bodies for all three element encodings, the eps variants,
// and the malformed bodies the validation tests reject.
func FuzzParseQueryRequest(f *testing.F) {
	seeds := []string{
		`{"query":"ACDEFGHIKLMNPQRS","eps":2}`,
		`{"query":[1,2,3,4.5,-6,7e2],"eps":0.5,"eps_max":3,"eps_inc":0.25}`,
		`{"query":[[0,1],[2.5,-3],[4,5]],"eps_max":10}`,
		`{"query":""}`,
		`{"eps":1}`,
		`{"query":"AC","unknown_field":true}`,
		`{"query":[[1],[2,3,4]]}`,
		`{"query":{"not":"a sequence"}}`,
		`{"query":"AC","eps":null}`,
		`[1,2,3]`,
		`not json at all`,
		``,
		`{"query":"` + "\xff\xfe" + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		checkParse[byte](t, body)
		checkParse[float64](t, body)
		checkParse[seq.Point2](t, body)
	})
}

func checkParse[E any](t *testing.T, body []byte) {
	t.Helper()
	req, q, err := parseQueryRequest[E](body)
	if err != nil {
		return
	}
	// A decoded query is usable: non-nil (servers slice it into windows)
	// and every element reachable.
	if q == nil {
		t.Fatalf("parseQueryRequest(%q) returned a nil sequence without an error", body)
	}
	for i := 0; i < len(q); i++ {
		_ = q[i]
	}
	// Go's JSON decoder replaces invalid UTF-8 with U+FFFD, so an accepted
	// string query is always valid UTF-8; anything else means the
	// decoder's contract changed underneath the servers.
	if s, ok := any(q).(seq.Sequence[byte]); ok && !utf8.ValidString(string(s)) {
		t.Fatalf("accepted byte query %q is not valid UTF-8", s)
	}
	// Accepted eps fields are dereferenceable.
	for _, p := range []*float64{req.Eps, req.EpsMax, req.EpsInc} {
		if p != nil {
			_ = *p
		}
	}
}
