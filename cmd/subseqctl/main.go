// Command subseqctl is a workbench for the subsequence-retrieval
// framework: it generates the synthetic datasets, builds window indexes
// over any registered measure × backend combination, reports index
// structure, and runs the query types — without recompiling.
//
// Usage:
//
//	subseqctl list
//	    print the registry: every measure with its capabilities, every
//	    backend, every dataset, and the measure × backend matrix with the
//	    reason each unsound pairing is rejected.
//
//	subseqctl stats -dataset proteins -measure levenshtein -windows 5000
//	    build a reference net over the dataset's windows under the chosen
//	    measure and print its structural statistics and level histogram.
//
//	subseqctl query -dataset songs -measure erp -backend covertree \
//	    -type longest -eps 3 -querylen 60 -queries 16 -workers 4
//	    generate mutated queries from the dataset and answer them:
//	    -type findall (I), longest (II), nearest (III) or filter (the
//	    filtering steps only). With -queries > 1 the batched engine shares
//	    one index traversal across the query set; with -workers > 1 the
//	    batch is fanned over a QueryPool's worker goroutines.
//
//	subseqctl serve -dataset proteins -backend refnet -addr 127.0.0.1:8077
//	    run the long-lived HTTP/JSON daemon: build the session once, then
//	    answer findall/longest/nearest/filter queries over POST /query/*,
//	    streaming every request through the QueryPool's Submit API so
//	    concurrent requests coalesce into shared index traversals.
//	    GET /stats reports the resolved configuration, the distance-call
//	    tallies and the streaming engine's counters. SIGINT/SIGTERM shut
//	    down gracefully. The daemon serves from a live store: POST
//	    /admin/append and /admin/retire mutate the running index with no
//	    downtime, POST /admin/snapshot persists it, and -restore starts
//	    from a snapshot without re-indexing (-snapshot-on-sigterm writes
//	    a final snapshot after the graceful drain).
//
//	subseqctl serve -config fleet.json   (or repeated -session k=v,… flags)
//	    host several named sessions in one process, each mounted under
//	    /s/{name}/ with its own store and admission config; the first
//	    session also answers the legacy root routes, and GET /sessions
//	    lists what the process hosts. A session with shard_lo/shard_hi
//	    serves one slice of the logical database (see docs/SHARDING.md).
//
//	subseqctl gateway -shard http://host:8077 -shard http://host:8078
//	    run the scatter-gather front end over a shard fleet: every query
//	    fans out to all shards and the answers merge deterministically —
//	    bit-identical to a single node over the same windows. A shard
//	    that cannot answer degrades the response (named in a
//	    "degradation" block) instead of failing it.
//
//	subseqctl distances -dataset traj -measure dfd -samples 10000
//	    print the pairwise window distance distribution.
//
// See docs/CLI.md for the full CLI reference, docs/SERVING.md for the
// serving architecture and HTTP API, and docs/PERSISTENCE.md for the
// store lifecycle and snapshot format.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/registry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		cmdList(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "gateway":
		cmdGateway(os.Args[2:])
	case "distances":
		cmdDistances(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: subseqctl <list|stats|query|serve|gateway|distances> [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "subseqctl:", err)
	os.Exit(1)
}

// commonFlags declares the flags shared by every dataset-touching
// subcommand and returns the spec they fill.
func commonFlags(fs *flag.FlagSet) *registry.SessionSpec {
	spec := &registry.SessionSpec{}
	fs.StringVar(&spec.Dataset, "dataset", "proteins", "dataset family (see `subseqctl list`)")
	fs.StringVar(&spec.Measure, "measure", "", "distance measure; empty selects the dataset's default")
	fs.StringVar(&spec.Backend, "backend", "refnet", "filter backend: refnet, covertree, mv or linear")
	fs.IntVar(&spec.Windows, "windows", 2000, "number of database windows to generate")
	fs.IntVar(&spec.WindowLen, "windowlen", 20, "window length l (matches must span ≥ λ = 2l elements)")
	fs.IntVar(&spec.Lambda0, "lambda0", 0, "temporal-shift bound λ0; 0 selects the measure default, -1 forces no shift")
	fs.Uint64Var(&spec.Seed, "seed", 1, "generator seed")
	return spec
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)
	renderList(os.Stdout)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	spec := commonFlags(fs)
	fs.Parse(args)
	s, err := newSession(*spec)
	if err != nil {
		fail(err)
	}
	st, hist := s.netStats()
	fmt.Printf("%s\n", s.describe())
	fmt.Printf("reference net: %v\n", st)
	fmt.Println("level histogram:")
	for _, h := range hist {
		fmt.Printf("  level %2d: %d nodes\n", h.Level, h.Count)
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	spec := commonFlags(fs)
	opts := queryOpts{}
	fs.StringVar(&opts.typ, "type", "longest", "query type: findall (I), longest (II), nearest (III) or filter")
	fs.Float64Var(&opts.eps, "eps", 3, "query radius (for nearest: the maximum radius)")
	fs.IntVar(&opts.qlen, "querylen", 60, "query length")
	fs.Float64Var(&opts.rate, "mutation", 0.1, "query mutation rate")
	fs.IntVar(&opts.queries, "queries", 1, "number of queries to generate and answer")
	fs.IntVar(&opts.workers, "workers", 1, "worker goroutines; > 1 answers the batch on a QueryPool")
	fs.Parse(args)
	s, err := newSession(*spec)
	if err != nil {
		fail(err)
	}
	opts.seed = spec.Seed + 100
	out, err := s.runQuery(opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s\n%s\n", s.describe(), out)
}

func cmdDistances(args []string) {
	fs := flag.NewFlagSet("distances", flag.ExitOnError)
	spec := commonFlags(fs)
	samples := fs.Int("samples", 10000, "number of sampled pairs")
	fs.Parse(args)
	s, err := newSession(*spec)
	if err != nil {
		fail(err)
	}
	sample := s.distanceSample(*samples)
	sum := stats.Summarize(sample)
	fmt.Printf("%s %v\n", s.describe(), sum)
	h := stats.NewHistogram(sum.Min, sum.Max+1e-9, 24)
	for _, v := range sample {
		h.Add(v)
	}
	fmt.Printf("distribution [%0.2f..%0.2f]: %s\n", sum.Min, sum.Max, h.Sparkline())
}
