// Command subseqctl is a workbench for the subsequence-retrieval
// framework: it generates the synthetic datasets, builds window indexes,
// reports their structure, and runs the three query types.
//
// Usage:
//
//	subseqctl stats -dataset proteins -windows 5000
//	    build a reference net over the dataset's windows and print its
//	    structural statistics and level histogram.
//
//	subseqctl query -dataset songs -windows 2000 -type II -eps 3 -querylen 60
//	    generate a mutated query from the dataset and run a query:
//	    -type I (all pairs), II (longest), III (nearest).
//
//	subseqctl distances -dataset traj -windows 2000 -samples 10000
//	    print the pairwise window distance distribution.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/refnet"
	"repro/internal/seq"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "stats":
		cmdStats(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "distances":
		cmdDistances(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: subseqctl <stats|query|distances> [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "subseqctl:", err)
	os.Exit(1)
}

// withDataset dispatches on the dataset name, handing typed windows,
// measure and matcher-builder to the callback through a small adapter
// interface (the three datasets have three element types).
type session interface {
	numWindows() int
	netStats() (refnet.Stats, []struct{ Level, Count int })
	distanceSample(samples int) []float64
	runQuery(qlen int, mutationRate float64, typ string, eps float64, seed uint64) (string, error)
}

type typedSession[E any] struct {
	ds      data.Dataset[E]
	measure dist.Measure[E]
	mkQuery func(qlen int, rate float64, seed uint64) seq.Sequence[E]
}

func (s *typedSession[E]) numWindows() int { return len(s.ds.Windows) }

func (s *typedSession[E]) netStats() (refnet.Stats, []struct{ Level, Count int }) {
	net := refnet.New(func(a, b seq.Window[E]) float64 { return s.measure.Fn(a.Data, b.Data) })
	for _, w := range s.ds.Windows {
		net.Insert(w)
	}
	return net.Stats(), net.LevelHistogram()
}

func (s *typedSession[E]) distanceSample(samples int) []float64 {
	return stats.SampleDistances(s.ds.Windows,
		func(a, b seq.Window[E]) float64 { return s.measure.Fn(a.Data, b.Data) }, samples, 1)
}

func (s *typedSession[E]) runQuery(qlen int, rate float64, typ string, eps float64, seed uint64) (string, error) {
	mt, err := core.NewMatcher(s.measure, core.Config{
		Params: core.Params{Lambda: 2 * s.ds.WindowLen, Lambda0: 1},
	}, s.ds.Sequences)
	if err != nil {
		return "", err
	}
	q := s.mkQuery(qlen, rate, seed)
	switch typ {
	case "I":
		ms := mt.FindAll(q, eps)
		return fmt.Sprintf("type I: %d similar pairs at eps=%g (filter calls %d, verify calls %d)",
			len(ms), eps, mt.FilterDistanceCalls(), mt.VerifyDistanceCalls()), nil
	case "II":
		m, ok := mt.Longest(q, eps)
		if !ok {
			return fmt.Sprintf("type II: no pair within eps=%g", eps), nil
		}
		return fmt.Sprintf("type II: longest %v (filter calls %d)", m, mt.FilterDistanceCalls()), nil
	case "III":
		m, ok := mt.Nearest(q, core.NearestOptions{EpsMax: eps, EpsInc: eps / 16})
		if !ok {
			return fmt.Sprintf("type III: no pair within eps=%g", eps), nil
		}
		return fmt.Sprintf("type III: nearest %v (filter calls %d)", m, mt.FilterDistanceCalls()), nil
	default:
		return "", fmt.Errorf("unknown query type %q (want I, II or III)", typ)
	}
}

func newSession(dataset string, windows int, seed uint64) (session, error) {
	const wl = 20
	switch dataset {
	case "proteins":
		ds := data.Proteins(windows, wl, seed)
		return &typedSession[byte]{
			ds:      ds,
			measure: dist.LevenshteinFastMeasure(),
			mkQuery: func(qlen int, rate float64, s uint64) seq.Sequence[byte] {
				return data.RandomQuery(ds, qlen, rate, data.MutateAA, s)
			},
		}, nil
	case "songs":
		ds := data.Songs(windows, wl, seed)
		return &typedSession[float64]{
			ds:      ds,
			measure: dist.DiscreteFrechetMeasure(dist.AbsDiff),
			mkQuery: func(qlen int, rate float64, s uint64) seq.Sequence[float64] {
				return data.RandomQuery(ds, qlen, rate, data.MutatePitch, s)
			},
		}, nil
	case "traj":
		ds := data.Trajectories(windows, wl, seed)
		return &typedSession[seq.Point2]{
			ds:      ds,
			measure: dist.ERPMeasure(dist.Point2Dist, seq.Point2{}),
			mkQuery: func(qlen int, rate float64, s uint64) seq.Sequence[seq.Point2] {
				return data.RandomQuery(ds, qlen, rate, data.MutatePoint, s)
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want proteins, songs or traj)", dataset)
	}
}

func commonFlags(fs *flag.FlagSet) (dataset *string, windows *int, seed *uint64) {
	dataset = fs.String("dataset", "proteins", "dataset: proteins, songs or traj")
	windows = fs.Int("windows", 2000, "number of database windows to generate")
	seed = fs.Uint64("seed", 1, "generator seed")
	return
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dataset, windows, seed := commonFlags(fs)
	fs.Parse(args)
	s, err := newSession(*dataset, *windows, *seed)
	if err != nil {
		fail(err)
	}
	st, hist := s.netStats()
	fmt.Printf("dataset=%s windows=%d\n", *dataset, s.numWindows())
	fmt.Printf("reference net: %v\n", st)
	fmt.Println("level histogram:")
	for _, h := range hist {
		fmt.Printf("  level %2d: %d nodes\n", h.Level, h.Count)
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dataset, windows, seed := commonFlags(fs)
	typ := fs.String("type", "II", "query type: I, II or III")
	eps := fs.Float64("eps", 3, "query radius (for III: the maximum radius)")
	qlen := fs.Int("querylen", 60, "query length")
	rate := fs.Float64("mutation", 0.1, "query mutation rate")
	fs.Parse(args)
	s, err := newSession(*dataset, *windows, *seed)
	if err != nil {
		fail(err)
	}
	out, err := s.runQuery(*qlen, *rate, *typ, *eps, *seed+100)
	if err != nil {
		fail(err)
	}
	fmt.Println(out)
}

func cmdDistances(args []string) {
	fs := flag.NewFlagSet("distances", flag.ExitOnError)
	dataset, windows, seed := commonFlags(fs)
	samples := fs.Int("samples", 10000, "number of sampled pairs")
	fs.Parse(args)
	s, err := newSession(*dataset, *windows, *seed)
	if err != nil {
		fail(err)
	}
	sample := s.distanceSample(*samples)
	sum := stats.Summarize(sample)
	fmt.Printf("dataset=%s windows=%d %v\n", *dataset, s.numWindows(), sum)
	h := stats.NewHistogram(sum.Min, sum.Max+1e-9, 24)
	for _, v := range sample {
		h.Add(v)
	}
	fmt.Printf("distribution [%0.2f..%0.2f]: %s\n", sum.Min, sum.Max, h.Sparkline())
}
