package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/registry"
)

// --- Replicated fleets: replica loss must be invisible. With two
// replicas per range, killing any single replica leaves every query kind
// answering 200 with no degradation block, bit-identical to a single
// node over the same windows — on all four backends. ---

// startReplicatedFleet builds an in-process fleet with n serving stacks
// per plan range (each its own index over the range's slice) and a
// replica-aware gateway over them. Returns the gateway's test server and
// the per-range replica servers so a test can kill one.
func startReplicatedFleet(t *testing.T, base registry.SessionSpec, plan shard.Plan, n int, opts ...shard.GatewayOption) (*httptest.Server, [][]*httptest.Server) {
	t.Helper()
	servers := make([][]*httptest.Server, len(plan.Ranges))
	groups := make([][]string, len(plan.Ranges))
	for i, r := range plan.Ranges {
		for j := 0; j < n; j++ {
			spec := base
			spec.ShardLo, spec.ShardHi = r.Lo, r.Hi
			ts, _ := newTestServerSpec(t, registry.ServerSpec{SessionSpec: spec, Workers: 2, QueueDepth: 16}, "")
			servers[i] = append(servers[i], ts)
			groups[i] = append(groups[i], ts.URL)
		}
	}
	gw, err := shard.NewReplicatedGateway(plan, groups, opts...)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	return gts, servers
}

func TestReplicatedFleetMasksReplicaLossAllBackends(t *testing.T) {
	for bi, backend := range []string{"refnet", "covertree", "mv", "linear"} {
		t.Run(backend, func(t *testing.T) {
			spec := newSpec("proteins", "levenshtein-fast", backend)
			spec.Windows = equivWindows
			ds, err := registry.GenerateDataset[byte](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
			if err != nil {
				t.Fatal(err)
			}
			numSeqs := len(ds.Sequences)
			plan, err := shard.Partition(numSeqs, 2)
			if err != nil {
				t.Fatal(err)
			}
			mt, _, err := registry.NewMatcher[byte](spec)
			if err != nil {
				t.Fatal(err)
			}
			gts, servers := startReplicatedFleet(t, spec, plan, 2)

			// Kill one replica — a different slot each backend, so the four
			// runs together cover every range/replica position.
			ri, pi := bi%2, (bi/2)%2
			t.Logf("killing replica %d of range %d %s", pi, ri, plan.Ranges[ri])
			servers[ri][pi].Close()

			q := string(ds.Sequences[0][:16])
			const eps = 2.0
			// Several rounds so round-robin routing lands on the dead
			// replica first at least once and fails over.
			for round := 0; round < 3; round++ {
				body := fmt.Sprintf(`{"query":%q,"eps":%g}`, q, eps)

				var fa shard.MatchesResponse
				if code := postJSON(t, gts, "/query/findall", body, &fa); code != http.StatusOK {
					t.Fatalf("findall status %d", code)
				}
				if fa.Degradation != nil {
					t.Fatalf("replica loss leaked as degradation: %+v", fa.Degradation)
				}
				want := toShardMatches(mt.FindAll([]byte(q), eps))
				if !reflect.DeepEqual(fa.Matches, want) {
					t.Fatalf("findall: gateway %v, single node %v", fa.Matches, want)
				}

				var fl shard.HitsResponse
				if code := postJSON(t, gts, "/query/filter", body, &fl); code != http.StatusOK {
					t.Fatalf("filter status %d", code)
				}
				if fl.Degradation != nil {
					t.Fatalf("filter degraded: %+v", fl.Degradation)
				}
				wantHits := toShardHits(mt.FilterHits([]byte(q), eps))
				shard.SortHits(wantHits)
				if !reflect.DeepEqual(fl.Hits, wantHits) {
					t.Fatalf("filter: gateway %v, single node %v", fl.Hits, wantHits)
				}

				var lg shard.BestResponse
				if code := postJSON(t, gts, "/query/longest", body, &lg); code != http.StatusOK {
					t.Fatalf("longest status %d", code)
				}
				if lg.Degradation != nil {
					t.Fatalf("longest degraded: %+v", lg.Degradation)
				}
				wm, wok := mt.Longest([]byte(q), eps)
				if lg.Found != wok || (wok && *lg.Match != toShardMatch(wm)) {
					t.Fatalf("longest: gateway %+v/%v, single node %+v/%v", lg.Match, lg.Found, wm, wok)
				}

				var nr shard.BestResponse
				nbody := fmt.Sprintf(`{"query":%q,"eps_max":%g}`, q, eps)
				if code := postJSON(t, gts, "/query/nearest", nbody, &nr); code != http.StatusOK {
					t.Fatalf("nearest status %d", code)
				}
				if nr.Degradation != nil {
					t.Fatalf("nearest degraded: %+v", nr.Degradation)
				}
				nm, nok := mt.Nearest([]byte(q), core.NearestOptions{EpsMax: eps, EpsInc: eps / 16})
				if nr.Found != nok || (nok && *nr.Match != toShardMatch(nm)) {
					t.Fatalf("nearest: gateway %+v/%v, single node %+v/%v", nr.Match, nr.Found, nm, nok)
				}
			}
		})
	}
}

// TestReplicaSmokeBinary is the replication end-to-end smoke CI runs via
// `make replica-smoke`: a real 2-ranges × 2-replicas fleet of serve
// processes behind a real gateway with hedging and probing on. Healthy
// answers are checked bit-identical against the library; then one
// replica process is killed — answers must stay 200 with zero
// degradation and identical bytes; then the replica is restarted on the
// same address and the gateway's breaker must re-admit it; and the
// gateway's /stats must expose the replication roster and single-flight
// counters. Finally the gateway shuts down cleanly on SIGTERM.
func TestReplicaSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := buildSubseqctl(t)
	spec := newSpec("proteins", "levenshtein-fast", "refnet")
	spec.Windows = equivWindows
	ds, err := registry.GenerateDataset[byte](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	numSeqs := len(ds.Sequences)
	cut := numSeqs / 2
	session := func(name string, lo, hi int) string {
		return fmt.Sprintf("name=%s,dataset=proteins,windows=%d,windowlen=%d,seed=%d,shard_lo=%d,shard_hi=%d,workers=2",
			name, spec.Windows, spec.WindowLen, spec.Seed, lo, hi)
	}
	type replica struct {
		cmd  *exec.Cmd
		base string
		args []string
	}
	start := func(addr, sess string) replica {
		args := []string{"-addr", addr, "-session", sess}
		cmd, base := startServeBinary(t, bin, args...)
		return replica{cmd: cmd, base: base, args: args}
	}
	fleet := []replica{
		start("127.0.0.1:0", session("r0a", 0, cut)),
		start("127.0.0.1:0", session("r0b", 0, cut)),
		start("127.0.0.1:0", session("r1a", cut, numSeqs)),
		start("127.0.0.1:0", session("r1b", cut, numSeqs)),
	}
	defer func() {
		for _, r := range fleet {
			r.cmd.Process.Kill()
		}
	}()

	gwCmd, gwBase := startBinary(t, bin, "gateway",
		"-addr", "127.0.0.1:0", "-attempts", "2", "-replicas", "2",
		"-hedge-after", "50ms", "-probe-interval", "100ms",
		"-shard", fleet[0].base, "-shard", fleet[1].base,
		"-shard", fleet[2].base, "-shard", fleet[3].base)
	defer gwCmd.Process.Kill()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path, body string, out any) int {
		t.Helper()
		resp, err := client.Post(gwBase+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", path, err)
		}
		return resp.StatusCode
	}

	mt, _, err := registry.NewMatcher[byte](spec)
	if err != nil {
		t.Fatal(err)
	}
	q := string(ds.Sequences[0][:16])
	body := fmt.Sprintf(`{"query":%q,"eps":2}`, q)
	want := toShardMatches(mt.FindAll([]byte(q), 2))
	checkAnswer := func(when string) {
		t.Helper()
		var fa shard.MatchesResponse
		if code := post("/query/findall", body, &fa); code != http.StatusOK {
			t.Fatalf("%s: findall status %d", when, code)
		}
		if fa.Degradation != nil {
			t.Fatalf("%s: degradation: %+v", when, fa.Degradation)
		}
		if !reflect.DeepEqual(fa.Matches, want) {
			t.Fatalf("%s: gateway %v, single node %v", when, fa.Matches, want)
		}
	}
	checkAnswer("healthy fleet")

	// Kill one replica process outright. Its range keeps a live twin, so
	// nothing may degrade.
	const victim = 1 // replica b of range 0
	t.Logf("killing replica %s", fleet[victim].base)
	fleet[victim].cmd.Process.Kill()
	fleet[victim].cmd.Wait()
	for round := 0; round < 3; round++ {
		checkAnswer("after replica kill")
	}

	// The gateway's breaker must notice the corpse (the prober runs every
	// 100ms) and say so on /healthz.
	breakerState := func() string {
		resp, err := client.Get(gwBase + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h shard.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if !h.OK {
			t.Fatalf("gateway unhealthy with every range covered: %+v", h)
		}
		return h.Ranges[0].Replicas[victim].Breaker.State
	}
	waitFor := func(state string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if breakerState() == state {
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("breaker never reached %q", state)
	}
	waitFor("open")

	// Restart the replica on the same host:port; the prober must re-admit
	// it without gateway restart.
	addr := strings.TrimPrefix(fleet[victim].base, "http://")
	cmd, base := startServeBinary(t, bin, append([]string{"-addr", addr}, fleet[victim].args[2:]...)...)
	fleet[victim] = replica{cmd: cmd, base: base}
	t.Logf("restarted replica at %s", base)
	waitFor("closed")
	checkAnswer("after replica restart")

	// /stats carries the replication roster and the new counters.
	resp, err := client.Get(gwBase + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats shard.GatewayStatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Replication) != 2 || len(stats.Replication[0].Replicas) != 2 {
		t.Fatalf("stats replication roster = %+v", stats.Replication)
	}
	if stats.Gateway.Queries == 0 {
		t.Fatalf("stats counters empty: %+v", stats.Gateway)
	}
	if stats.Gateway.SingleFlight.Misses == 0 {
		t.Fatalf("single-flight counters never counted a flight: %+v", stats.Gateway.SingleFlight)
	}
	if stats.Degradation != nil {
		t.Fatalf("stats degraded with a full fleet: %+v", stats.Degradation)
	}

	// Clean SIGTERM shutdown, same contract as serve.
	stopServeBinary(t, gwCmd)
}
