package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/registry"
)

// --- Cross-shard equivalence: the PR's central claim. A scatter-gather
// fleet over any partition of the database must answer every query type
// bit-identically to a single node over the same windows, on all four
// backends, for randomized shard counts and split points. ---

// startShardFleet builds an in-process fleet: one serving stack per plan
// range (the session spec's shard_lo/shard_hi select the slice), each
// behind an httptest.Server, and a gateway scattered over them. Returns
// the gateway's test server.
func startShardFleet(t *testing.T, base registry.SessionSpec, plan shard.Plan) *httptest.Server {
	t.Helper()
	urls := make([]string, len(plan.Ranges))
	for i, r := range plan.Ranges {
		spec := base
		spec.ShardLo, spec.ShardHi = r.Lo, r.Hi
		ts, _ := newTestServerSpec(t, registry.ServerSpec{SessionSpec: spec, Workers: 2, QueueDepth: 16}, "")
		urls[i] = ts.URL
	}
	gw, err := shard.NewGateway(plan, urls)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	return gts
}

func toShardMatch(m core.Match) shard.Match {
	return shard.Match{SeqID: m.SeqID, QStart: m.QStart, QEnd: m.QEnd, XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist}
}

func toShardMatches(ms []core.Match) []shard.Match {
	out := make([]shard.Match, len(ms))
	for i, m := range ms {
		out[i] = toShardMatch(m)
	}
	return out
}

func toShardHits(hs []core.Hit[byte]) []shard.Hit {
	out := make([]shard.Hit, len(hs))
	for i, h := range hs {
		out[i] = shard.Hit{
			SeqID: h.Window.SeqID, WindowStart: h.Window.Start, WindowEnd: h.Window.End(),
			SegStart: h.Segment.Start, SegEnd: h.Segment.End(),
		}
	}
	return out
}

// equivWindows sizes the equivalence datasets: 100 windows generate five
// protein sequences, enough for 2–4 shard partitions with varied splits.
const equivWindows = 100

func TestCrossShardEquivalence(t *testing.T) {
	spec := newSpec("proteins", "levenshtein-fast", "")
	spec.Windows = equivWindows
	ds, err := registry.GenerateDataset[byte](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	numSeqs := len(ds.Sequences)
	if numSeqs < 3 {
		t.Fatalf("dataset generates only %d sequences; the sweep needs at least 3", numSeqs)
	}
	// Query set: verbatim subsequences of different database sequences (so
	// matches exist, including exact dist-0 ties) plus a mutated stranger.
	queries := []string{
		string(ds.Sequences[0][:16]),
		string(ds.Sequences[numSeqs-1][:16]),
		strings.Repeat("WYAC", 5),
	}
	radii := []float64{2, 5}

	for _, backend := range []string{"refnet", "covertree", "mv", "linear"} {
		spec := newSpec("proteins", "levenshtein-fast", backend)
		spec.Windows = equivWindows
		mt, _, err := registry.NewMatcher[byte](spec)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			t.Run(fmt.Sprintf("%s/trial%d", backend, trial), func(t *testing.T) {
				// Deterministic "random" topology, logged so any failure
				// names the exact partition that produced it.
				rng := rand.New(rand.NewPCG(11, uint64(trial)))
				n := 2 + rng.IntN(min(3, numSeqs-1))
				plan, err := shard.RandomPlan(numSeqs, n, rng)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("plan: %d sequences over %d shards %v", plan.Seqs, len(plan.Ranges), plan.Ranges)
				gts := startShardFleet(t, spec, plan)

				for qi, q := range queries {
					for _, eps := range radii {
						body := fmt.Sprintf(`{"query":%q,"eps":%g}`, q, eps)

						var fa shard.MatchesResponse
						if code := postJSON(t, gts, "/query/findall", body, &fa); code != http.StatusOK {
							t.Fatalf("findall status %d", code)
						}
						if fa.Degradation != nil {
							t.Fatalf("healthy fleet reported degradation: %+v", fa.Degradation)
						}
						want := toShardMatches(mt.FindAll([]byte(q), eps))
						if !reflect.DeepEqual(fa.Matches, want) {
							t.Fatalf("findall(q%d, eps=%g): gateway %v, single node %v", qi, eps, fa.Matches, want)
						}

						var fl shard.HitsResponse
						if code := postJSON(t, gts, "/query/filter", body, &fl); code != http.StatusOK {
							t.Fatalf("filter status %d", code)
						}
						wantHits := toShardHits(mt.FilterHits([]byte(q), eps))
						shard.SortHits(wantHits)
						if !reflect.DeepEqual(fl.Hits, wantHits) {
							t.Fatalf("filter(q%d, eps=%g): gateway %v, single node %v", qi, eps, fl.Hits, wantHits)
						}

						var lg shard.BestResponse
						if code := postJSON(t, gts, "/query/longest", body, &lg); code != http.StatusOK {
							t.Fatalf("longest status %d", code)
						}
						wm, wok := mt.Longest([]byte(q), eps)
						if lg.Found != wok {
							t.Fatalf("longest(q%d, eps=%g): gateway found=%v, single node %v", qi, eps, lg.Found, wok)
						}
						if wok && *lg.Match != toShardMatch(wm) {
							t.Fatalf("longest(q%d, eps=%g): gateway %+v, single node %+v", qi, eps, *lg.Match, wm)
						}

						var nr shard.BestResponse
						nbody := fmt.Sprintf(`{"query":%q,"eps_max":%g}`, q, eps)
						if code := postJSON(t, gts, "/query/nearest", nbody, &nr); code != http.StatusOK {
							t.Fatalf("nearest status %d", code)
						}
						nm, nok := mt.Nearest([]byte(q), core.NearestOptions{EpsMax: eps, EpsInc: eps / 16})
						if nr.Found != nok {
							t.Fatalf("nearest(q%d, eps_max=%g): gateway found=%v, single node %v", qi, eps, nr.Found, nok)
						}
						if nok && *nr.Match != toShardMatch(nm) {
							t.Fatalf("nearest(q%d, eps_max=%g): gateway %+v, single node %+v", qi, eps, *nr.Match, nm)
						}
					}
				}

				// The batch endpoint merges per-query-index: one request
				// carrying every query must answer exactly like the
				// per-query endpoints did.
				qjson := make([]string, len(queries))
				for i, q := range queries {
					qjson[i] = fmt.Sprintf("%q", q)
				}
				batch := fmt.Sprintf(`{"kind":"findall","queries":[%s],"eps":5}`, strings.Join(qjson, ","))
				var br shard.BatchResponse
				if code := postJSON(t, gts, "/query/batch", batch, &br); code != http.StatusOK {
					t.Fatalf("batch status %d", code)
				}
				if br.Count != len(queries) || len(br.Matches) != len(queries) {
					t.Fatalf("batch answered %d/%d queries", br.Count, len(queries))
				}
				for i, q := range queries {
					want := toShardMatches(mt.FindAll([]byte(q), 5))
					if !reflect.DeepEqual(br.Matches[i], want) {
						t.Fatalf("batch query %d: gateway %v, single node %v", i, br.Matches[i], want)
					}
				}
			})
		}
	}
}

// A fleet with a dead shard keeps serving: answers carry a degradation
// block naming the blind spot, and the surviving shards' results are
// still exact over their ranges.
func TestGatewayDegradedShard(t *testing.T) {
	spec := newSpec("proteins", "levenshtein-fast", "refnet")
	spec.Windows = equivWindows
	ds, err := registry.GenerateDataset[byte](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	numSeqs := len(ds.Sequences)
	plan, err := shard.Partition(numSeqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 is live; shard 1 is a closed server (connection refused).
	live := spec
	live.ShardLo, live.ShardHi = plan.Ranges[0].Lo, plan.Ranges[0].Hi
	ts, _ := newTestServerSpec(t, registry.ServerSpec{SessionSpec: live, Workers: 2, QueueDepth: 16}, "")
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	gw, err := shard.NewGateway(plan, []string{ts.URL, dead.URL})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()

	q := string(ds.Sequences[0][:16])
	var fa shard.MatchesResponse
	if code := postJSON(t, gts, "/query/findall", fmt.Sprintf(`{"query":%q,"eps":2}`, q), &fa); code != http.StatusOK {
		t.Fatalf("degraded findall status %d, want 200", code)
	}
	if fa.Degradation == nil || !fa.Degradation.Degraded || len(fa.Degradation.Failures) != 1 {
		t.Fatalf("degradation block missing or wrong: %+v", fa.Degradation)
	}
	if f := fa.Degradation.Failures[0]; f.Shard != 1 || f.Range != plan.Ranges[1] {
		t.Fatalf("failure names shard %d range %v, want shard 1 range %v", f.Shard, f.Range, plan.Ranges[1])
	}
	// The surviving shard's answer is exact over its own range: a single
	// node restricted to that slice must agree bit for bit.
	mt, _, err := registry.NewMatcher[byte](live)
	if err != nil {
		t.Fatal(err)
	}
	want := toShardMatches(mt.FindAll([]byte(q), 2))
	if !reflect.DeepEqual(fa.Matches, want) {
		t.Fatalf("degraded answer %v, surviving slice answers %v", fa.Matches, want)
	}
}

// --- Batch endpoint: many queries per request must route through the
// matcher's batched entry points (one FilterHitsBatch call per request),
// not one call per query — the tally counters on /stats prove it. ---

func TestServeBatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "proteins", "levenshtein-fast", "refnet")
	ds, err := registry.GenerateDataset[byte]("proteins", 30, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		string(ds.Sequences[0][:16]),
		string(ds.Sequences[1][:16]),
		string(ds.Sequences[0][20:34]),
	}
	qjson := make([]string, len(queries))
	for i, q := range queries {
		qjson[i] = fmt.Sprintf("%q", q)
	}
	qlist := strings.Join(qjson, ",")

	var fa shard.BatchResponse
	if code := postJSON(t, ts, "/query/batch", `{"kind":"findall","queries":[`+qlist+`],"eps":3}`, &fa); code != http.StatusOK {
		t.Fatalf("findall batch status %d", code)
	}
	var lg shard.BatchResponse
	if code := postJSON(t, ts, "/query/batch", `{"kind":"longest","queries":[`+qlist+`],"eps":3}`, &lg); code != http.StatusOK {
		t.Fatalf("longest batch status %d", code)
	}
	var fl shard.BatchResponse
	if code := postJSON(t, ts, "/query/batch", `{"kind":"filter","queries":[`+qlist+`],"eps":3}`, &fl); code != http.StatusOK {
		t.Fatalf("filter batch status %d", code)
	}

	// Three batch requests of three queries each, and nothing else, have
	// touched this server: exactly 3 batched calls carrying 9 queries —
	// ≥ 2 queries per traversal, which is the endpoint's whole point.
	var st statsResponse
	getJSON(t, ts, "/stats", &st)
	if st.Batch.Calls != 3 || st.Batch.Queries != 9 {
		t.Fatalf("batch tallies calls=%d queries=%d, want 3 and 9", st.Batch.Calls, st.Batch.Queries)
	}

	// Batch answers are bit-identical to the per-query endpoints.
	for i, q := range queries {
		body := fmt.Sprintf(`{"query":%q,"eps":3}`, q)
		var one matchesResponse
		postJSON(t, ts, "/query/findall", body, &one)
		if !reflect.DeepEqual(fa.Matches[i], toBatchMatches(one.Matches)) {
			t.Fatalf("batch findall query %d: %v, endpoint %v", i, fa.Matches[i], one.Matches)
		}
		var best bestResponse
		postJSON(t, ts, "/query/longest", body, &best)
		if lg.Best[i].Found != best.Found {
			t.Fatalf("batch longest query %d: found=%v, endpoint %v", i, lg.Best[i].Found, best.Found)
		}
		if best.Found && *lg.Best[i].Match != (shard.Match{SeqID: best.Match.SeqID, QStart: best.Match.QStart, QEnd: best.Match.QEnd, XStart: best.Match.XStart, XEnd: best.Match.XEnd, Dist: best.Match.Dist}) {
			t.Fatalf("batch longest query %d: %+v, endpoint %+v", i, *lg.Best[i].Match, *best.Match)
		}
		var hits hitsResponse
		postJSON(t, ts, "/query/filter", body, &hits)
		if len(fl.Hits[i]) != len(hits.Hits) {
			t.Fatalf("batch filter query %d: %d hits, endpoint %d", i, len(fl.Hits[i]), len(hits.Hits))
		}
	}
}

func toBatchMatches(ms []wireMatch) []shard.Match {
	out := make([]shard.Match, len(ms))
	for i, m := range ms {
		out[i] = shard.Match{SeqID: m.SeqID, QStart: m.QStart, QEnd: m.QEnd, XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist}
	}
	return out
}

func TestServeBatchValidation(t *testing.T) {
	ts, _ := newTestServer(t, "proteins", "levenshtein-fast", "refnet")
	cases := []string{
		`{"kind":"nearest","queries":["ACDEFG"],"eps":1}`, // no batched nearest
		`{"kind":"findall","queries":[],"eps":1}`,         // empty batch
		`{"kind":"findall","queries":["AC"]}`,             // missing eps
		`{"kind":"findall","queries":["AC"],"eps":-1}`,    // negative eps
		`{"kind":"findall","queries":[[1,2]],"eps":1}`,    // wrong element encoding
		`not json`,
	}
	for _, body := range cases {
		var er errorResponse
		if code := postJSON(t, ts, "/query/batch", body, &er); code != http.StatusBadRequest {
			t.Errorf("batch %s: status %d, want 400", body, code)
		} else if er.Error == "" {
			t.Errorf("batch %s: empty error body", body)
		}
	}
	// A bad query names its index.
	var er errorResponse
	postJSON(t, ts, "/query/batch", `{"kind":"findall","queries":["ACDEFG",[1]],"eps":1}`, &er)
	if !strings.Contains(er.Error, "query 1") {
		t.Errorf("bad query error %q does not name the query index", er.Error)
	}
}

// --- Multi-session routing: several named sessions in one process. ---

func TestServeMultiSession(t *testing.T) {
	buildServer := func(name, dataset, measure string) mountedSession {
		t.Helper()
		spec := newSpec(dataset, measure, "refnet")
		s, err := newSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := s.newServer(registry.ServerSpec{SessionSpec: spec, Name: name, Workers: 2, QueueDepth: 16}, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(qs.close)
		return mountedSession{name: name, qs: qs}
	}
	alpha := buildServer("alpha", "proteins", "levenshtein-fast")
	beta := buildServer("beta", "songs", "dfd")
	ts := httptest.NewServer(multiSessionMux([]mountedSession{alpha, beta}))
	defer ts.Close()

	// GET /sessions lists both, in mount order, with their configs.
	var listing []sessionListing
	if code := getJSON(t, ts, "/sessions", &listing); code != http.StatusOK {
		t.Fatalf("/sessions status %d", code)
	}
	if len(listing) != 2 || listing[0].Name != "alpha" || listing[1].Name != "beta" {
		t.Fatalf("listing = %+v", listing)
	}
	if listing[0].Path != "/s/alpha/" || listing[1].Config.Dataset.Name != "songs" {
		t.Fatalf("listing paths/configs wrong: %+v", listing)
	}

	// Each session answers under its own mount, with its own element type.
	var fa matchesResponse
	if code := postJSON(t, ts, "/s/alpha/query/findall", `{"query":"ACDEFGHIKLMNPQRS","eps":6}`, &fa); code != http.StatusOK {
		t.Fatalf("alpha findall status %d", code)
	}
	var fl hitsResponse
	if code := postJSON(t, ts, "/s/beta/query/filter", `{"query":[1,2,3,4,5,6,7,8,9,10,11,0,1,2],"eps":4}`, &fl); code != http.StatusOK {
		t.Fatalf("beta filter status %d", code)
	}
	// A byte-typed query against the float64 session is that session's
	// 400, proving per-session decoding.
	var er errorResponse
	if code := postJSON(t, ts, "/s/beta/query/findall", `{"query":"ACDEFG","eps":1}`, &er); code != http.StatusBadRequest {
		t.Fatalf("mistyped beta query status %d, want 400", code)
	}

	// Legacy root routes are the first session's: the same byte query that
	// worked under /s/alpha/ works at the root.
	var rootFA matchesResponse
	if code := postJSON(t, ts, "/query/findall", `{"query":"ACDEFGHIKLMNPQRS","eps":6}`, &rootFA); code != http.StatusOK {
		t.Fatalf("root findall status %d", code)
	}
	if rootFA.Count != fa.Count {
		t.Fatalf("root answers %d matches, /s/alpha/ answered %d", rootFA.Count, fa.Count)
	}

	// Per-session stats surface each session's own config.
	var st statsResponse
	if code := getJSON(t, ts, "/s/beta/stats", &st); code != http.StatusOK {
		t.Fatalf("beta stats status %d", code)
	}
	if st.Config.Dataset.Name != "songs" || st.Config.Name != "beta" {
		t.Fatalf("beta stats config = %+v", st.Config)
	}

	// Unknown sessions are 404s.
	resp, err := http.Post(ts.URL+"/s/nope/query/findall", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status %d, want 404", resp.StatusCode)
	}
}

// --- Session flag / config parsing. ---

func TestParseSessionFlag(t *testing.T) {
	spec, err := parseSessionFlag("name=p1,dataset=proteins,windows=300,windowlen=8,seed=7,shard_lo=3,shard_hi=9,workers=2,queue=32,shed=reject,request_timeout=2s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "p1" || spec.Dataset != "proteins" || spec.Windows != 300 ||
		spec.WindowLen != 8 || spec.Seed != 7 || spec.ShardLo != 3 || spec.ShardHi != 9 ||
		spec.Workers != 2 || spec.QueueDepth != 32 || spec.Shed != "reject" ||
		spec.RequestTimeout != 2*time.Second {
		t.Fatalf("parsed spec %+v", spec)
	}
	for _, bad := range []string{
		"name=x",                                // missing dataset
		"dataset=proteins,windows=a",            // bad int
		"dataset=proteins,frobnicate=1",         // unknown key
		"dataset=proteins,shard_lo",             // not key=value
		"dataset=proteins,seed=-1",              // bad uint
		"dataset=proteins,request_timeout=fast", // bad duration
	} {
		if _, err := parseSessionFlag(bad); err == nil {
			t.Errorf("parseSessionFlag(%q) accepted", bad)
		}
	}
	// Windows defaults so a minimal -session flag is usable.
	spec, err = parseSessionFlag("dataset=songs")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Windows != 2000 {
		t.Fatalf("windows default = %d, want 2000", spec.Windows)
	}
}

func TestServeSpecsSources(t *testing.T) {
	legacy := registry.ServerSpec{SessionSpec: newSpec("proteins", "", "refnet")}
	// Neither -config nor -session: the legacy single session.
	specs, err := serveSpecs("", nil, legacy)
	if err != nil || len(specs) != 1 || specs[0].Dataset != "proteins" {
		t.Fatalf("legacy fallback = %+v (%v)", specs, err)
	}
	// Both given: refused.
	if _, err := serveSpecs("x.json", stringList{"dataset=songs"}, legacy); err == nil {
		t.Fatal("-config and -session together accepted")
	}
	// A config file round-trips, and unknown fields are rejected.
	dir := t.TempDir()
	good := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(good, []byte(`[
		{"name":"p0","dataset":"proteins","windows":100,"window_len":8,"shard_lo":0,"shard_hi":4},
		{"name":"p1","dataset":"proteins","windows":100,"window_len":8,"shard_lo":4,"shard_hi":8}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err = serveSpecs(good, nil, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].ShardLo != 4 || specs[0].Name != "p0" {
		t.Fatalf("config specs = %+v", specs)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"dataset":"proteins","shards":3}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := serveSpecs(bad, nil, legacy); err == nil {
		t.Fatal("unknown config field accepted")
	}
	if _, err := serveSpecs(filepath.Join(dir, "missing.json"), nil, legacy); err == nil {
		t.Fatal("missing config file accepted")
	}
}

// --- Gateway CLI plumbing: the -ranges flag and /stats discovery. ---

func TestPlanFromFlag(t *testing.T) {
	plan, err := planFromFlag("0-3,3-6")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seqs != 6 || len(plan.Ranges) != 2 || plan.Ranges[1] != (shard.Range{Lo: 3, Hi: 6}) {
		t.Fatalf("plan = %+v", plan)
	}
	for _, bad := range []string{"", "0-3,4-6", "3", "a-b", "0-3,3-2"} {
		if _, err := planFromFlag(bad); err == nil {
			t.Errorf("planFromFlag(%q) accepted", bad)
		}
	}
}

func TestDiscoverPlan(t *testing.T) {
	statsServer := func(lo, hi, seqs int) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"config":{"shard_lo":%d,"shard_hi":%d},"store":{"sequences":%d}}`, lo, hi, seqs)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	httpGet := func(ctx context.Context, url string) (*http.Response, error) { return http.Get(url) }

	// A sharded fleet describes its own plan.
	a, b := statsServer(0, 4, 4), statsServer(4, 9, 5)
	plan, err := discoverPlan([][]string{{a.URL}, {b.URL}}, httpGet)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seqs != 9 || plan.Ranges[1] != (shard.Range{Lo: 4, Hi: 9}) {
		t.Fatalf("discovered plan %+v", plan)
	}
	// An unsharded fleet stacks by sequence count.
	c, d := statsServer(0, 0, 3), statsServer(0, 0, 2)
	plan, err = discoverPlan([][]string{{c.URL}, {d.URL}}, httpGet)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seqs != 5 || plan.Ranges[1] != (shard.Range{Lo: 3, Hi: 5}) {
		t.Fatalf("stacked plan %+v", plan)
	}
	// A mixed fleet is ambiguous.
	if _, err := discoverPlan([][]string{{a.URL}, {c.URL}}, httpGet); err == nil {
		t.Fatal("mixed fleet accepted")
	}
	// A gapped sharded fleet is rejected by plan validation.
	e := statsServer(5, 9, 4)
	if _, err := discoverPlan([][]string{{a.URL}, {e.URL}}, httpGet); err == nil {
		t.Fatal("gapped fleet accepted")
	}

	// A replica set speaks through whichever member answers: with one
	// replica dead, discovery still succeeds off the live one.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	plan, err = discoverPlan([][]string{{dead.URL, a.URL}, {b.URL}}, httpGet)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seqs != 9 {
		t.Fatalf("replicated discovery plan %+v", plan)
	}
	// Every replica dead fails discovery for the range.
	if _, err := discoverPlan([][]string{{dead.URL}, {b.URL}}, httpGet); err == nil {
		t.Fatal("all-dead replica set accepted")
	}
	// Replicas that answer must agree on their slice.
	if _, err := discoverPlan([][]string{{a.URL, b.URL}}, httpGet); err == nil {
		t.Fatal("disagreeing replicas accepted")
	}
}

func TestReplicaGroups(t *testing.T) {
	groups, err := replicaGroups([]string{"a", "b", "c", "d"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a", "b"}, {"c", "d"}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
	// One comma-separated entry per range is the explicit spelling.
	groups, err = replicaGroups([]string{"a, b", "c"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want = [][]string{{"a", "b"}, {"c"}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("explicit groups = %v, want %v", groups, want)
	}
	if _, err := replicaGroups([]string{"a", "b", "c"}, 2); err == nil {
		t.Fatal("accepted URL count not divisible by -replicas")
	}
	if _, err := replicaGroups([]string{"a,b"}, 2); err == nil {
		t.Fatal("accepted comma entries combined with -replicas > 1")
	}
	if _, err := replicaGroups([]string{"a,,b"}, 1); err == nil {
		t.Fatal("accepted empty replica URL")
	}
	if _, err := replicaGroups([]string{"a"}, 0); err == nil {
		t.Fatal("accepted -replicas 0")
	}
}

// TestShardSmokeBinary is the sharding end-to-end smoke CI runs via
// `make shard-smoke`: two real shard serve processes, a real gateway
// discovering the plan from their /stats, per-kind and batch queries
// through the gateway (findall checked bit-identical against the
// library), then one shard killed outright — the warm query must keep
// answering undegraded from the result cache, a cold query must keep
// answering 200 with the dead shard named in the degradation block, and
// the gateway must still shut down cleanly on SIGTERM.
func TestShardSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := buildSubseqctl(t)
	spec := newSpec("proteins", "levenshtein-fast", "refnet")
	spec.Windows = equivWindows
	ds, err := registry.GenerateDataset[byte](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	numSeqs := len(ds.Sequences)
	cut := numSeqs / 2
	session := func(name string, lo, hi int) string {
		return fmt.Sprintf("name=%s,dataset=proteins,windows=%d,windowlen=%d,seed=%d,shard_lo=%d,shard_hi=%d,workers=2",
			name, spec.Windows, spec.WindowLen, spec.Seed, lo, hi)
	}
	cmdA, baseA := startServeBinary(t, bin, "-addr", "127.0.0.1:0", "-session", session("p0", 0, cut))
	defer cmdA.Process.Kill()
	cmdB, baseB := startServeBinary(t, bin, "-addr", "127.0.0.1:0", "-session", session("p1", cut, numSeqs))
	defer cmdB.Process.Kill()
	gwCmd, gwBase := startBinary(t, bin, "gateway",
		"-addr", "127.0.0.1:0", "-attempts", "2",
		"-shard", baseA, "-shard", baseB)
	defer gwCmd.Process.Kill()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path, body string, out any) int {
		t.Helper()
		resp, err := client.Post(gwBase+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", path, err)
		}
		return resp.StatusCode
	}

	q0, q1 := string(ds.Sequences[0][:16]), string(ds.Sequences[numSeqs-1][:16])
	body := fmt.Sprintf(`{"query":%q,"eps":3}`, q0)

	// Per-kind queries through the gateway; findall against the library.
	mt, _, err := registry.NewMatcher[byte](spec)
	if err != nil {
		t.Fatal(err)
	}
	var fa shard.MatchesResponse
	if code := post("/query/findall", body, &fa); code != http.StatusOK {
		t.Fatalf("findall status %d", code)
	}
	if fa.Degradation != nil {
		t.Fatalf("healthy fleet degraded: %+v", fa.Degradation)
	}
	if want := toShardMatches(mt.FindAll([]byte(q0), 3)); !reflect.DeepEqual(fa.Matches, want) {
		t.Fatalf("findall through fleet %v, single node %v", fa.Matches, want)
	}
	var lg shard.BestResponse
	if code := post("/query/longest", body, &lg); code != http.StatusOK || !lg.Found {
		t.Fatalf("longest status %d found %v", code, lg.Found)
	}
	var nr shard.BestResponse
	if code := post("/query/nearest", fmt.Sprintf(`{"query":%q,"eps_max":3}`, q0), &nr); code != http.StatusOK || !nr.Found {
		t.Fatalf("nearest status %d found %v", code, nr.Found)
	}
	var fl shard.HitsResponse
	if code := post("/query/filter", body, &fl); code != http.StatusOK || fl.Count == 0 {
		t.Fatalf("filter status %d count %d", code, fl.Count)
	}
	// A batch of two queries through the gateway.
	var br shard.BatchResponse
	batch := fmt.Sprintf(`{"kind":"findall","queries":[%q,%q],"eps":3}`, q0, q1)
	if code := post("/query/batch", batch, &br); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if br.Count != 2 || len(br.Matches) != 2 {
		t.Fatalf("batch answered %d queries, want 2", br.Count)
	}

	// Kill shard p1 outright. The warm query was cached while the fleet
	// was healthy, so it keeps answering 200 with no degradation — the
	// result cache masks the dead shard for hot keys.
	cmdB.Process.Kill()
	cmdB.Wait()
	var warm shard.MatchesResponse
	if code := post("/query/findall", body, &warm); code != http.StatusOK {
		t.Fatalf("cached findall with a dead shard: status %d, want 200", code)
	}
	if warm.Degradation != nil {
		t.Fatalf("cached findall degraded after kill: %+v", warm.Degradation)
	}
	if !reflect.DeepEqual(warm.Matches, fa.Matches) {
		t.Fatalf("cached findall after kill %v, want the pre-kill answer %v", warm.Matches, fa.Matches)
	}
	// A cold query must recompute, keep serving 200, and name the dead
	// shard in the degradation block.
	var deg shard.MatchesResponse
	coldBody := fmt.Sprintf(`{"query":%q,"eps":2}`, q0)
	if code := post("/query/findall", coldBody, &deg); code != http.StatusOK {
		t.Fatalf("findall with a dead shard: status %d, want 200", code)
	}
	if deg.Degradation == nil || !deg.Degradation.Degraded || len(deg.Degradation.Failures) != 1 {
		t.Fatalf("degradation after kill: %+v", deg.Degradation)
	}
	if f := deg.Degradation.Failures[0]; f.Shard != 1 || f.Range.Lo != cut {
		t.Fatalf("failure names shard %d range %v, want shard 1 starting at %d", f.Shard, f.Range, cut)
	}
	resp, err := client.Get(gwBase + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway healthz %d with one shard alive, want 200", resp.StatusCode)
	}

	stopServeBinary(t, gwCmd)
	stopServeBinary(t, cmdA)
}
