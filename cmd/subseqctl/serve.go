package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/registry"
)

// subseqctl serve: the long-lived serving path. A session (dataset ×
// measure × backend, resolved by the registry exactly as the query
// subcommand resolves it) is built once at startup — or restored from a
// snapshot in seconds with -restore — and wrapped in a live store
// (internal/store); every request is then streamed through a QueryPool's
// Submit API, so concurrent requests coalesce into shared index
// traversals and a slow client cannot queue unbounded work (the pool's
// in-flight budget is the backpressure). The admin surface mutates the
// store while queries run: POST /admin/append, /admin/retire and
// /admin/snapshot, with in-flight query claims draining before each
// mutation. docs/SERVING.md covers the query API; docs/PERSISTENCE.md
// covers the lifecycle and snapshot format.

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	spec := commonFlags(fs)
	addr := fs.String("addr", registry.DefaultServeAddr, "TCP listen address (host:port; :0 picks a free port)")
	workers := fs.Int("workers", 0, "streaming worker goroutines; 0 selects GOMAXPROCS")
	queue := fs.Int("queue", 0, "bounded in-flight submissions (backpressure); 0 selects the default")
	restore := fs.String("restore", "", "restore the index from this snapshot file instead of building it (the snapshot must match the session flags)")
	snapOnTerm := fs.String("snapshot-on-sigterm", "", "write a snapshot to this file during graceful shutdown, after in-flight queries drain")
	shed := fs.String("shed", "", "load-shedding policy when the queue is full: block (default), reject or fair")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline; expired queries are dropped before a worker prices them (0: none)")
	snapInterval := fs.Duration("snapshot-interval", 0, "write a background snapshot to -snapshot-path this often (0: disabled)")
	snapPath := fs.String("snapshot-path", "", "target file for -snapshot-interval snapshots (written atomically)")
	config := fs.String("config", "", "JSON file holding a list of server specs, one named session each (multi-session mode; see docs/SHARDING.md)")
	var sessions stringList
	fs.Var(&sessions, "session", "add a named session from comma-separated key=value pairs, e.g. name=p0,dataset=proteins,windows=200,shard_lo=0,shard_hi=3 (repeatable; see docs/SHARDING.md)")
	fs.Parse(args)
	legacy := registry.ServerSpec{
		SessionSpec: *spec, Restore: *restore,
		Addr: *addr, Workers: *workers, QueueDepth: *queue,
		Shed: *shed, RequestTimeout: *reqTimeout,
		SnapshotInterval: *snapInterval, SnapshotPath: *snapPath,
	}
	specs, err := serveSpecs(*config, sessions, legacy)
	if err != nil {
		fail(err)
	}
	if err := registry.ValidateServerSpecs(specs); err != nil {
		fail(err)
	}
	if *snapOnTerm != "" && len(specs) > 1 {
		fail(errors.New("-snapshot-on-sigterm applies to a single session; give multi-session processes per-session snapshot_path entries"))
	}
	// In multi-session mode the process still has exactly one listener: an
	// explicit -addr flag wins, else the one address the spec list names.
	listenAddr := *addr
	if (*config != "" || len(sessions) > 0) && !flagWasSet(fs, "addr") {
		listenAddr = registry.ListenAddr(specs)
	}
	type running struct {
		name string
		s    session
		qs   queryServer
	}
	servers := make([]running, 0, len(specs))
	defer func() {
		for _, rs := range servers {
			rs.qs.close()
		}
	}()
	for _, sp := range specs {
		s, err := newSession(sp.SessionSpec)
		if err != nil {
			fail(fmt.Errorf("session %q: %w", sp.MountName(), err))
		}
		qs, err := s.newServer(sp, sp.Restore)
		if err != nil {
			fail(fmt.Errorf("session %q: %w", sp.MountName(), err))
		}
		servers = append(servers, running{name: sp.MountName(), s: s, qs: qs})
	}
	mounts := make([]mountedSession, len(servers))
	for i, rs := range servers {
		mounts[i] = mountedSession{name: rs.name, qs: rs.qs}
	}
	root := multiSessionMux(mounts)
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fail(err)
	}
	// The bound address is printed and echoed on /stats (not the requested
	// one) so scripts may listen on :0 and scrape the port.
	for _, rs := range servers {
		rs.qs.setAddr(ln.Addr().String())
	}
	for _, rs := range servers {
		if rs.qs.wasRestored() {
			fmt.Printf("subseqctl: session %q restored %d windows without re-indexing\n", rs.name, rs.qs.numWindows())
		}
		if len(servers) > 1 {
			fmt.Printf("subseqctl: session %q (%s) at /s/%s/\n", rs.name, rs.s.describe(), rs.name)
		}
	}
	fmt.Printf("subseqctl: serving %s on http://%s\n", servers[0].s.describe(), ln.Addr())
	hs := &http.Server{Handler: root}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// Graceful shutdown: stop accepting, give in-flight requests a
		// grace period, then drain the streaming engine.
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-done
	if *snapOnTerm != "" {
		// Requests have drained; the store is quiescent. Snapshot it so the
		// next start can -restore instead of re-indexing.
		if err := servers[0].qs.snapshot(*snapOnTerm); err != nil {
			fail(err)
		}
		fmt.Printf("subseqctl: snapshot written to %s\n", *snapOnTerm)
	}
	fmt.Println("subseqctl: shut down")
}

// sessionListing is one entry of GET /sessions: how a multi-session
// process advertises what it hosts (the gateway's discovery surface).
type sessionListing struct {
	Name   string                `json:"name"`
	Path   string                `json:"path"`
	Config registry.ServerConfig `json:"config"`
}

// mountedSession pairs a session's mount name with its serving stack.
type mountedSession struct {
	name string
	qs   queryServer
}

// multiSessionMux is the multi-tenant routing surface: every session
// mounts under /s/{name}/, the first session also answers the legacy
// root routes (so single-session invocations and the shard fleet behind
// a gateway keep working unchanged), and GET /sessions lists what the
// process hosts.
func multiSessionMux(servers []mountedSession) *http.ServeMux {
	root := http.NewServeMux()
	for _, rs := range servers {
		root.Handle("/s/"+rs.name+"/", http.StripPrefix("/s/"+rs.name, rs.qs.handler()))
	}
	root.Handle("/", servers[0].qs.handler())
	root.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		out := make([]sessionListing, len(servers))
		for i, rs := range servers {
			out[i] = sessionListing{Name: rs.name, Path: "/s/" + rs.name + "/", Config: rs.qs.config()}
		}
		writeJSON(w, http.StatusOK, out)
	})
	return root
}

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// flagWasSet reports whether the named flag was given explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// serveSpecs assembles the process's session list: a JSON -config file, a
// repeated -session flag, or (neither given) the legacy single session the
// plain serve flags describe. The process-level engine flags (-workers,
// -queue, -shed, …) apply to the legacy session only; config/-session
// entries carry their own knobs, whose zero values resolve to the same
// defaults.
func serveSpecs(configPath string, sessions stringList, legacy registry.ServerSpec) ([]registry.ServerSpec, error) {
	if configPath != "" && len(sessions) > 0 {
		return nil, errors.New("-config and -session are mutually exclusive")
	}
	if configPath != "" {
		b, err := os.ReadFile(configPath)
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		var specs []registry.ServerSpec
		if err := dec.Decode(&specs); err != nil {
			return nil, fmt.Errorf("config %s: %w", configPath, err)
		}
		return specs, nil
	}
	if len(sessions) > 0 {
		specs := make([]registry.ServerSpec, len(sessions))
		for i, s := range sessions {
			spec, err := parseSessionFlag(s)
			if err != nil {
				return nil, fmt.Errorf("-session %q: %w", s, err)
			}
			specs[i] = spec
		}
		return specs, nil
	}
	return []registry.ServerSpec{legacy}, nil
}

// parseSessionFlag parses one -session value: comma-separated key=value
// pairs naming the session and its spec.
func parseSessionFlag(s string) (registry.ServerSpec, error) {
	var spec registry.ServerSpec
	for _, kv := range strings.Split(s, ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("%q is not key=value", kv)
		}
		var err error
		switch k {
		case "name":
			spec.Name = v
		case "dataset":
			spec.Dataset = v
		case "measure":
			spec.Measure = v
		case "backend":
			spec.Backend = v
		case "windows":
			spec.Windows, err = strconv.Atoi(v)
		case "windowlen", "window_len":
			spec.WindowLen, err = strconv.Atoi(v)
		case "lambda0":
			spec.Lambda0, err = strconv.Atoi(v)
		case "seed":
			spec.Seed, err = strconv.ParseUint(v, 10, 64)
		case "shard_lo":
			spec.ShardLo, err = strconv.Atoi(v)
		case "shard_hi":
			spec.ShardHi, err = strconv.Atoi(v)
		case "restore":
			spec.Restore = v
		case "workers":
			spec.Workers, err = strconv.Atoi(v)
		case "queue", "queue_depth":
			spec.QueueDepth, err = strconv.Atoi(v)
		case "shed":
			spec.Shed = v
		case "request_timeout":
			spec.RequestTimeout, err = time.ParseDuration(v)
		case "snapshot_interval":
			spec.SnapshotInterval, err = time.ParseDuration(v)
		case "snapshot_path":
			spec.SnapshotPath = v
		case "addr":
			spec.Addr = v
		default:
			return spec, fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("key %q: %w", k, err)
		}
	}
	if spec.Dataset == "" {
		return spec, errors.New(`missing "dataset"`)
	}
	if spec.Windows == 0 {
		spec.Windows = 2000
	}
	return spec, nil
}

// queryServer is the untyped face of a typedServer, mirroring how session
// hides typedSession's element type from the subcommands.
type queryServer interface {
	handler() http.Handler
	config() registry.ServerConfig
	// setAddr records the address the listener actually bound (it differs
	// from the requested one under -addr :0), so /stats echoes a usable
	// address. Call before serving requests.
	setAddr(addr string)
	numWindows() int
	// wasRestored reports whether the store actually restored from the
	// -restore snapshot (false when a corrupt snapshot was quarantined
	// and the index rebuilt instead).
	wasRestored() bool
	// snapshot writes the store to path atomically (temp file + rename).
	snapshot(path string) error
	close()
}

// typedServer owns the long-lived serving state: the live store, the
// streaming pool resolving it through the store's view guard, and the
// resolved configuration it echoes on /stats.
type typedServer[E any] struct {
	sess     *typedSession[E]
	cfg      registry.ServerConfig
	st       *store.Store[E]
	pool     *core.QueryPool[E]
	mux      *http.ServeMux
	start    time.Time
	restored bool
	// seqBase re-bases wire-level sequence IDs when this process serves
	// one shard of a logical index (spec.ShardLo): the store numbers its
	// local slice from 0, the wire reports global IDs, so a gateway can
	// merge shard answers without remapping (see internal/shard).
	seqBase int
	// reqTimeout bounds each query request end to end (0: none); sched is
	// the background snapshot loop (nil unless -snapshot-interval is set).
	reqTimeout time.Duration
	sched      *store.Scheduler
	// sweepStop ends the TTL sweeper goroutine at close.
	sweepStop chan struct{}
	closeOnce sync.Once
}

// ttlSweepInterval is how often the serving store retires TTL-expired
// sequences.
const ttlSweepInterval = 30 * time.Second

func (s *typedSession[E]) newServer(spec registry.ServerSpec, restore string) (queryServer, error) {
	cfg, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	shed, err := core.ParseShedPolicy(cfg.Shed)
	if err != nil {
		return nil, err
	}
	var st *store.Store[E]
	restored := false
	if restore != "" {
		// Restore path: decode the snapshot instead of indexing the
		// generated dataset. The snapshot header is validated against the
		// session spec first — a snapshot taken under different flags is
		// refused with the disagreement explained. A snapshot whose bytes
		// are corrupt (as opposed to mismatched) is quarantined and the
		// index rebuilt, so one bad file never wedges a restart loop.
		st, err = registry.OpenStoreFile[E](restore, s.spec)
		var corrupt *store.CorruptError
		switch {
		case err == nil:
			restored = true
		case errors.As(err, &corrupt):
			qpath, qerr := store.Quarantine(restore)
			if qerr != nil {
				return nil, fmt.Errorf("snapshot %s is corrupt (%v) and could not be quarantined: %w", restore, corrupt, qerr)
			}
			fmt.Fprintf(os.Stderr, "subseqctl: snapshot %s is corrupt (%v); quarantined to %s, rebuilding the index\n",
				restore, corrupt, qpath)
			st, err = s.store()
		}
	} else {
		st, err = s.store()
	}
	if err != nil {
		return nil, err
	}
	srv := &typedServer[E]{
		sess: s, cfg: cfg, st: st,
		pool:       st.NewQueryPool(cfg.Workers, core.WithQueueDepth(cfg.QueueDepth), core.WithShedPolicy(shed)),
		start:      time.Now(),
		restored:   restored,
		seqBase:    spec.ShardLo,
		reqTimeout: spec.RequestTimeout,
		sweepStop:  make(chan struct{}),
	}
	if spec.SnapshotInterval > 0 {
		srv.sched, err = st.ScheduleSnapshots(spec.SnapshotPath, spec.SnapshotInterval,
			store.WithSnapshotOnError(func(err error) {
				fmt.Fprintf(os.Stderr, "subseqctl: background snapshot: %v\n", err)
			}))
		if err != nil {
			return nil, err
		}
	}
	go func() {
		t := time.NewTicker(ttlSweepInterval)
		defer t.Stop()
		for {
			select {
			case <-srv.sweepStop:
				return
			case <-t.C:
				srv.st.Sweep()
			}
		}
	}()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/findall", srv.handleFindAll)
	mux.HandleFunc("POST /query/longest", srv.handleLongest)
	mux.HandleFunc("POST /query/nearest", srv.handleNearest)
	mux.HandleFunc("POST /query/filter", srv.handleFilter)
	mux.HandleFunc("POST /query/batch", srv.handleBatch)
	mux.HandleFunc("POST /admin/append", srv.handleAppend)
	mux.HandleFunc("POST /admin/retire", srv.handleRetire)
	mux.HandleFunc("POST /admin/snapshot", srv.handleSnapshot)
	mux.HandleFunc("GET /stats", srv.handleStats)
	mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux = mux
	return srv, nil
}

func (srv *typedServer[E]) handler() http.Handler         { return srv.mux }
func (srv *typedServer[E]) config() registry.ServerConfig { return srv.cfg }
func (srv *typedServer[E]) setAddr(addr string)           { srv.cfg.Addr = addr }
func (srv *typedServer[E]) numWindows() int               { return srv.st.Matcher().NumWindows() }
func (srv *typedServer[E]) wasRestored() bool             { return srv.restored }
func (srv *typedServer[E]) snapshot(path string) error    { return srv.st.SnapshotFile(path) }
func (srv *typedServer[E]) close() {
	srv.closeOnce.Do(func() {
		close(srv.sweepStop)
		if srv.sched != nil {
			srv.sched.Stop()
		}
		srv.pool.Close()
	})
}

// --- Wire formats (documented in docs/SERVING.md) ---

// queryRequest is the body of every /query/* POST. Query's encoding
// depends on the dataset's element type: a JSON string for byte datasets,
// an array of numbers for float64, an array of [x, y] pairs for point2.
type queryRequest struct {
	Query json.RawMessage `json:"query"`
	// Eps is the query radius (findall, longest, filter).
	Eps *float64 `json:"eps"`
	// EpsMax/EpsInc tune nearest (Type III); eps_inc defaults to
	// eps_max/16.
	EpsMax *float64 `json:"eps_max"`
	EpsInc *float64 `json:"eps_inc"`
}

// wireMatch is core.Match with stable JSON names.
type wireMatch struct {
	SeqID  int     `json:"seq_id"`
	QStart int     `json:"q_start"`
	QEnd   int     `json:"q_end"`
	XStart int     `json:"x_start"`
	XEnd   int     `json:"x_end"`
	Dist   float64 `json:"dist"`
}

func toWireMatch(m core.Match) wireMatch {
	return wireMatch{SeqID: m.SeqID, QStart: m.QStart, QEnd: m.QEnd, XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist}
}

// wireMatch converts a store-local match to the wire, re-basing the
// sequence ID into the global numbering when this process is a shard.
func (srv *typedServer[E]) wireMatch(m core.Match) wireMatch {
	wm := toWireMatch(m)
	wm.SeqID += srv.seqBase
	return wm
}

// wireHit converts a store-local filter hit to the wire, re-based like
// wireMatch.
func (srv *typedServer[E]) wireHit(h core.Hit[E]) wireHit {
	return wireHit{
		SeqID: h.Window.SeqID + srv.seqBase, WindowStart: h.Window.Start, WindowEnd: h.Window.End(),
		SegStart: h.Segment.Start, SegEnd: h.Segment.End(),
	}
}

// shardMatch is wireMatch's twin for the batch endpoint, which speaks the
// shard package's wire envelopes (identical JSON, shared with the gateway).
func (srv *typedServer[E]) shardMatch(m core.Match) shard.Match {
	return shard.Match{
		SeqID: m.SeqID + srv.seqBase, QStart: m.QStart, QEnd: m.QEnd,
		XStart: m.XStart, XEnd: m.XEnd, Dist: m.Dist,
	}
}

func (srv *typedServer[E]) shardHit(h core.Hit[E]) shard.Hit {
	return shard.Hit{
		SeqID: h.Window.SeqID + srv.seqBase, WindowStart: h.Window.Start, WindowEnd: h.Window.End(),
		SegStart: h.Segment.Start, SegEnd: h.Segment.End(),
	}
}

// wireHit is one filtered segment↔window pair.
type wireHit struct {
	SeqID       int `json:"seq_id"`
	WindowStart int `json:"window_start"`
	WindowEnd   int `json:"window_end"`
	SegStart    int `json:"segment_start"`
	SegEnd      int `json:"segment_end"`
}

type matchesResponse struct {
	Count   int         `json:"count"`
	Matches []wireMatch `json:"matches"`
}

type bestResponse struct {
	Found bool       `json:"found"`
	Match *wireMatch `json:"match,omitempty"`
}

type hitsResponse struct {
	Count int       `json:"count"`
	Hits  []wireHit `json:"hits"`
}

type statsResponse struct {
	Config        registry.ServerConfig `json:"config"`
	UptimeSeconds float64               `json:"uptime_seconds"`
	NumWindows    int                   `json:"num_windows"`
	// DistanceCalls surfaces the matcher's striped distance-call tallies:
	// the paper's hardware-independent cost accounting, live.
	DistanceCalls struct {
		Build  int64 `json:"build"`
		Filter int64 `json:"filter"`
		Verify int64 `json:"verify"`
	} `json:"distance_calls"`
	Stream core.StreamStats `json:"stream"`
	// Batch tallies the batched-engine entry points: how many
	// FilterHitsBatch calls ran (every batch kind funnels through it) and
	// how many queries they carried. Queries/Calls is the amortisation
	// ratio the batch endpoint exists to raise.
	Batch struct {
		Calls   int64 `json:"calls"`
		Queries int64 `json:"queries"`
	} `json:"batch"`
	// Snapshots is the background snapshot scheduler's health; absent
	// unless -snapshot-interval is set.
	Snapshots *store.SchedulerStats `json:"snapshots,omitempty"`
	// Store is the live-store census: allocated sequence IDs, live
	// (non-retired) sequences, pending TTLs, and whether this process
	// restored from a snapshot instead of indexing.
	Store struct {
		Sequences int  `json:"sequences"`
		Live      int  `json:"live"`
		TTLs      int  `json:"ttls"`
		Restored  bool `json:"restored"`
	} `json:"store"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// maxRequestBytes caps a /query/* request body. The streaming engine's
// queue depth bounds in-flight queries; this bounds what any single
// request may allocate before it even becomes one.
const maxRequestBytes = 8 << 20

// decodeQuery parses the request body and its element-typed query payload.
func (srv *typedServer[E]) decodeQuery(w http.ResponseWriter, r *http.Request) (queryRequest, seq.Sequence[E], error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		return queryRequest{}, nil, fmt.Errorf("reading request body: %w", err)
	}
	return parseQueryRequest[E](body)
}

// parseQueryRequest is decodeQuery without the HTTP plumbing: the whole
// untrusted-input surface of a /query/* request in one pure function, so
// it can be fuzzed directly (FuzzParseQueryRequest). It must never panic;
// any malformed body must come back as an error.
func parseQueryRequest[E any](body []byte) (queryRequest, seq.Sequence[E], error) {
	var req queryRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, fmt.Errorf("invalid request body: %w", err)
	}
	if len(req.Query) == 0 {
		return req, nil, errors.New(`missing "query"`)
	}
	q, err := decodeSeq[E](req.Query)
	if err != nil {
		return req, nil, err
	}
	return req, q, nil
}

// decodeSeq decodes a query sequence from its element-typed JSON encoding:
// a string for byte, an array of numbers for float64, an array of [x, y]
// pairs for point2 — matching how the dataset families are described in
// `subseqctl list`.
func decodeSeq[E any](raw json.RawMessage) (seq.Sequence[E], error) {
	// json.Unmarshal treats null as a no-op for every target type here, so
	// without this guard a null query would decode into a nil sequence
	// with no error (found by FuzzParseQueryRequest).
	if string(raw) == "null" {
		return nil, errors.New(`"query" must not be null`)
	}
	switch any((*E)(nil)).(type) {
	case *byte:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf(`"query" must be a JSON string for byte datasets: %w`, err)
		}
		return any(seq.Sequence[byte](s)).(seq.Sequence[E]), nil
	case *float64:
		var v []float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf(`"query" must be a JSON array of numbers for float64 datasets: %w`, err)
		}
		return any(seq.Sequence[float64](v)).(seq.Sequence[E]), nil
	case *seq.Point2:
		var v [][2]float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf(`"query" must be a JSON array of [x, y] pairs for point2 datasets: %w`, err)
		}
		pts := make(seq.Sequence[seq.Point2], len(v))
		for i, p := range v {
			pts[i] = seq.Point2{X: p[0], Y: p[1]}
		}
		return any(pts).(seq.Sequence[E]), nil
	default:
		return nil, fmt.Errorf("unsupported element type %T", *new(E))
	}
}

// needEps validates the radius shared by findall, longest and filter.
func needEps(req queryRequest) (float64, error) {
	if req.Eps == nil {
		return 0, errors.New(`missing "eps"`)
	}
	if *req.Eps < 0 {
		return 0, errors.New(`"eps" must be >= 0`)
	}
	return *req.Eps, nil
}

// submitErrStatus maps a streaming-submission error to an HTTP status,
// the contract documented in docs/SERVING.md ("Operating under load"):
// shed queries are 429 Too Many Requests, deadline-expired queries 504
// Gateway Timeout, client-abandoned contexts 499 (the de-facto "client
// closed request"), a closed pool 503 Service Unavailable, and a crashed
// worker 500.
func submitErrStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, core.ErrPoolClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeSubmitErr maps err through submitErrStatus; retryable statuses
// (429, 503) carry a Retry-After so well-behaved clients back off instead
// of hammering a saturated queue.
func writeSubmitErr(w http.ResponseWriter, err error) {
	status := submitErrStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeErr(w, status, err)
}

// submitOpts assembles the per-request admission metadata: the request
// context (bounded by -request-timeout when set), a matching submission
// deadline so expired queries are dropped before a worker prices them,
// and the tenant attribution from the X-Tenant header (for the fair-share
// shed policy). The cancel func must be deferred by the caller.
func (srv *typedServer[E]) submitOpts(r *http.Request) (context.Context, context.CancelFunc, []core.SubmitOption) {
	ctx := r.Context()
	cancel := func() {}
	var opts []core.SubmitOption
	if srv.reqTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, srv.reqTimeout)
		opts = append(opts, core.WithSubmitTimeout(srv.reqTimeout))
	}
	if tenant := r.Header.Get("X-Tenant"); tenant != "" {
		opts = append(opts, core.WithTenant(tenant))
	}
	return ctx, cancel, opts
}

func (srv *typedServer[E]) handleFindAll(w http.ResponseWriter, r *http.Request) {
	req, q, err := srv.decodeQuery(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	eps, err := needEps(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, sopts := srv.submitOpts(r)
	defer cancel()
	ms, err := srv.pool.Submit(ctx, q, eps, sopts...).Await(ctx)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	resp := matchesResponse{Count: len(ms), Matches: make([]wireMatch, len(ms))}
	for i, m := range ms {
		resp.Matches[i] = srv.wireMatch(m)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *typedServer[E]) handleLongest(w http.ResponseWriter, r *http.Request) {
	req, q, err := srv.decodeQuery(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	eps, err := needEps(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, sopts := srv.submitOpts(r)
	defer cancel()
	res, err := srv.pool.SubmitLongest(ctx, q, eps, sopts...).Await(ctx)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	resp := bestResponse{Found: res.Found}
	if res.Found {
		m := srv.wireMatch(res.Match)
		resp.Match = &m
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *typedServer[E]) handleNearest(w http.ResponseWriter, r *http.Request) {
	req, q, err := srv.decodeQuery(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.EpsMax == nil || *req.EpsMax <= 0 {
		writeErr(w, http.StatusBadRequest, errors.New(`nearest requires "eps_max" > 0`))
		return
	}
	opts := core.NearestOptions{EpsMax: *req.EpsMax, EpsInc: *req.EpsMax / 16}
	if req.EpsInc != nil {
		opts.EpsInc = *req.EpsInc
	}
	if opts.EpsInc <= 0 {
		writeErr(w, http.StatusBadRequest, errors.New(`"eps_inc" must be > 0`))
		return
	}
	ctx, cancel, sopts := srv.submitOpts(r)
	defer cancel()
	res, err := srv.pool.SubmitNearest(ctx, q, opts, sopts...).Await(ctx)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	resp := bestResponse{Found: res.Found}
	if res.Found {
		m := srv.wireMatch(res.Match)
		resp.Match = &m
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *typedServer[E]) handleFilter(w http.ResponseWriter, r *http.Request) {
	req, q, err := srv.decodeQuery(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	eps, err := needEps(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, sopts := srv.submitOpts(r)
	defer cancel()
	hits, err := srv.pool.SubmitFilter(ctx, q, eps, sopts...).Await(ctx)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	resp := hitsResponse{Count: len(hits), Hits: make([]wireHit, len(hits))}
	for i, h := range hits {
		resp.Hits[i] = srv.wireHit(h)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch answers POST /query/batch: many queries of one kind in one
// request, fed to the matcher's batched entry points so they share index
// traversals (Section 7's many-queries-one-traversal path). Batches
// deliberately bypass the streaming pool — the pool's coalescing would
// re-chunk the batch, and the request already is the batch — and instead
// pin the store's current matcher through its view guard for the call.
func (srv *typedServer[E]) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req shard.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if !shard.ValidBatchKind(req.Kind) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf(`"kind" must be findall, longest or filter, got %q`, req.Kind))
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New(`"queries" must not be empty`))
		return
	}
	if req.Eps == nil {
		writeErr(w, http.StatusBadRequest, errors.New(`missing "eps"`))
		return
	}
	if *req.Eps < 0 {
		writeErr(w, http.StatusBadRequest, errors.New(`"eps" must be >= 0`))
		return
	}
	qs := make([]seq.Sequence[E], len(req.Queries))
	for i, raw := range req.Queries {
		q, err := decodeSeq[E](raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		qs[i] = q
	}
	mt, release := srv.st.View()
	defer release()
	resp := shard.BatchResponse{Kind: req.Kind, Count: len(qs)}
	switch req.Kind {
	case "findall":
		per := mt.FindAllBatch(qs, *req.Eps)
		resp.Matches = make([][]shard.Match, len(per))
		for i, ms := range per {
			out := make([]shard.Match, len(ms))
			for j, m := range ms {
				out[j] = srv.shardMatch(m)
			}
			resp.Matches[i] = out
		}
	case "longest":
		ms, found := mt.LongestBatch(qs, *req.Eps)
		resp.Best = make([]shard.BestResult, len(ms))
		for i := range ms {
			if found[i] {
				m := srv.shardMatch(ms[i])
				resp.Best[i] = shard.BestResult{Found: true, Match: &m}
			}
		}
	case "filter":
		per := mt.FilterHitsBatch(qs, *req.Eps)
		resp.Hits = make([][]shard.Hit, len(per))
		for i, hs := range per {
			out := make([]shard.Hit, len(hs))
			for j, h := range hs {
				out[j] = srv.shardHit(h)
			}
			resp.Hits[i] = out
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *typedServer[E]) handleStats(w http.ResponseWriter, r *http.Request) {
	// The atomic matcher peek: stats must not queue behind a mutation
	// holding the store's write lock.
	mt := srv.st.Matcher()
	resp := statsResponse{
		Config:        srv.cfg,
		UptimeSeconds: time.Since(srv.start).Seconds(),
		NumWindows:    mt.NumWindows(),
		Stream:        srv.pool.StreamStats(),
	}
	resp.DistanceCalls.Build = mt.BuildDistanceCalls()
	resp.DistanceCalls.Filter = mt.FilterDistanceCalls()
	resp.DistanceCalls.Verify = mt.VerifyDistanceCalls()
	resp.Batch.Calls = mt.BatchCalls()
	resp.Batch.Queries = mt.BatchQueries()
	if srv.sched != nil {
		ss := srv.sched.Stats()
		resp.Snapshots = &ss
	}
	ids, live := srv.st.Len()
	resp.Store.Sequences = ids
	resp.Store.Live = live
	resp.Store.TTLs = len(srv.st.Expiries())
	resp.Store.Restored = srv.restored
	writeJSON(w, http.StatusOK, resp)
}

func (srv *typedServer[E]) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "num_windows": srv.st.Matcher().NumWindows()})
}

// --- Admin surface (POST /admin/*): mutate the live store while queries
// run. Each mutation takes the store's write lock, so it waits only for
// query claims already in flight; docs/PERSISTENCE.md documents the
// consistency model. ---

// appendRequest is the body of POST /admin/append. Sequence uses the
// same element-typed encoding as queries.
type appendRequest struct {
	Sequence json.RawMessage `json:"sequence"`
	// TTLSeconds schedules the sequence for retirement after this many
	// seconds (0 or absent: no TTL).
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

type appendResponse struct {
	SeqID         int `json:"seq_id"`
	WindowsAdded  int `json:"windows_added"`
	NumWindows    int `json:"num_windows"`
	LiveSequences int `json:"live_sequences"`
}

func (srv *typedServer[E]) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req appendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if len(req.Sequence) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New(`missing "sequence"`))
		return
	}
	if req.TTLSeconds < 0 {
		writeErr(w, http.StatusBadRequest, errors.New(`"ttl_seconds" must be >= 0`))
		return
	}
	x, err := decodeSeq[E](req.Sequence)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var opts []store.AppendOption
	if req.TTLSeconds > 0 {
		opts = append(opts, store.WithTTL(time.Duration(req.TTLSeconds*float64(time.Second))))
	}
	res, err := srv.st.Append(x, opts...)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	_, live := srv.st.Len()
	writeJSON(w, http.StatusOK, appendResponse{
		SeqID: res.SeqID + srv.seqBase, WindowsAdded: res.Windows,
		NumWindows: srv.st.Matcher().NumWindows(), LiveSequences: live,
	})
}

type retireRequest struct {
	SeqID *int `json:"seq_id"`
}

type retireResponse struct {
	SeqID          int `json:"seq_id"`
	WindowsRemoved int `json:"windows_removed"`
	NumWindows     int `json:"num_windows"`
}

func (srv *typedServer[E]) handleRetire(w http.ResponseWriter, r *http.Request) {
	var req retireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if req.SeqID == nil {
		writeErr(w, http.StatusBadRequest, errors.New(`missing "seq_id"`))
		return
	}
	// The wire speaks global sequence IDs; the store numbers this shard's
	// slice from 0.
	local := *req.SeqID - srv.seqBase
	if local < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf(
			"sequence %d is not owned by this shard (its range starts at %d)", *req.SeqID, srv.seqBase))
		return
	}
	removed, err := srv.st.Retire(local)
	switch {
	case errors.Is(err, core.ErrRetireUnsupported):
		// The backend cannot do it at all — a capability conflict, not a
		// bad request.
		writeErr(w, http.StatusConflict, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, retireResponse{
		SeqID: *req.SeqID, WindowsRemoved: removed,
		NumWindows: srv.st.Matcher().NumWindows(),
	})
}

// snapshotRequest is the body of POST /admin/snapshot: the server-side
// path to write (the daemon may not share a filesystem with the client,
// so the snapshot lands next to the daemon, atomically).
type snapshotRequest struct {
	Path string `json:"path"`
}

type snapshotResponse struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

func (srv *typedServer[E]) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if req.Path == "" {
		writeErr(w, http.StatusBadRequest, errors.New(`missing "path"`))
		return
	}
	if err := srv.st.SnapshotFile(req.Path); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	info, err := os.Stat(req.Path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Path: req.Path, Bytes: info.Size()})
}
