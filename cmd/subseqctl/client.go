package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// retryClient is the client half of the serving tier's load-shedding
// contract: the daemon answers a saturated queue with 429 (shed) or 503
// (shutting down) plus a Retry-After, and a well-behaved client backs
// off and retries a bounded number of times instead of hammering the
// queue. postJSONRetry implements that — jittered exponential backoff,
// Retry-After honoured when the server names a wait, transport errors
// retried the same way — so scripts driving subseqctl serve under load
// get it for free.
type retryClient struct {
	hc *http.Client
	// attempts caps total tries (first call + retries); ≤ 0 selects 4.
	attempts int
	// backoff is the first retry delay, growing ×2 per retry with ±25%
	// jitter up to maxBackoff; ≤ 0 selects 100ms / 2s.
	backoff    time.Duration
	maxBackoff time.Duration
}

// retryable reports whether the daemon asked the client to come back
// later rather than rejecting the request outright.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryAfter extracts a server-named wait from the response, if any.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	if resp == nil {
		return 0, false
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// postJSON POSTs body to url, retrying shed (429) and unavailable (503)
// responses and transport errors with jittered exponential backoff until
// the attempt budget runs out or ctx is done. Any other response —
// success or a definitive error — is returned to the caller as is; the
// caller owns closing its body. When the budget runs out the last shed
// response is returned (not an error), so callers still see the status
// and body the daemon sent.
func (c *retryClient) postJSON(ctx context.Context, url string, body []byte) (*http.Response, error) {
	attempts := c.attempts
	if attempts <= 0 {
		attempts = 4
	}
	wait := c.backoff
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	maxWait := c.maxBackoff
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	hc := c.hc
	if hc == nil {
		hc = http.DefaultClient
	}
	var resp *http.Response
	var err error
	for attempt := 1; ; attempt++ {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if rerr != nil {
			return nil, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err = hc.Do(req)
		if err == nil && !retryable(resp.StatusCode) {
			return resp, nil
		}
		if attempt >= attempts {
			if err != nil {
				return nil, fmt.Errorf("%d attempts: %w", attempts, err)
			}
			return resp, nil
		}
		d := wait + time.Duration(rand.Int64N(int64(wait)/2+1)) - wait/4
		if ra, ok := retryAfter(resp); ok && ra > d {
			d = ra
		}
		if resp != nil {
			// Drain so the connection is reusable before sleeping.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
		}
		if wait *= 2; wait > maxWait {
			wait = maxWait
		}
	}
}
