package main

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/registry"
)

// renderList prints the registry: measures with capabilities, backends,
// datasets, and the measure × backend matrix with every rejection's reason.
// It is pure over the registry's contents, so `subseqctl list` is golden-
// testable.
func renderList(w io.Writer) {
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}

	fmt.Fprintln(w, "measures (canonical instantiations per element type):")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  NAME\tELEM\tMETRIC\tCONSISTENT\tLOCK-STEP\tINCREMENTAL\tBOUNDED\tDESCRIPTION")
	for _, m := range registry.Measures() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			m.Name, m.Elem, yn(m.Metric), yn(m.Consistent), yn(m.LockStep),
			yn(m.Incremental), yn(m.Bounded), m.Description)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nbackends:")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  NAME\tACCEPTS\tDESCRIPTION")
	for _, b := range registry.Backends() {
		accepts := "any consistent measure"
		if b.NeedsMetric {
			accepts = "metric measures"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", b.Name, accepts, b.Description)
	}
	tw.Flush()

	fmt.Fprintln(w, "\ndatasets:")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  NAME\tELEM\tDEFAULT MEASURE\tDESCRIPTION")
	for _, d := range registry.Datasets() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\n", d.Name, d.Elem, d.DefaultMeasure, d.Description)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nmeasure × backend (ok = runnable, no = rejected):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprint(tw, "  NAME\tELEM")
	for _, b := range registry.Backends() {
		fmt.Fprintf(tw, "\t%s", b.Name)
	}
	fmt.Fprintln(tw)
	type rejection struct{ measure, backend, why string }
	var rejected []rejection
	seen := map[string]bool{}
	for _, m := range registry.Measures() {
		fmt.Fprintf(tw, "  %s\t%s", m.Name, m.Elem)
		for _, b := range registry.Backends() {
			if err := registry.Compatible(m, b); err != nil {
				fmt.Fprint(tw, "\tno")
				if key := m.Name + "/" + b.Name; !seen[key] {
					seen[key] = true
					rejected = append(rejected, rejection{m.Name, b.Name, err.Error()})
				}
			} else {
				fmt.Fprint(tw, "\tok")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	if len(rejected) > 0 {
		fmt.Fprintln(w, "\nrejected pairings:")
		for _, r := range rejected {
			fmt.Fprintf(w, "  %s × %s: %s\n", r.measure, r.backend, r.why)
		}
	}
}
