package main

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/refnet"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/registry"
)

// Session construction is registry-driven: the dataset name fixes the
// element type, the measure and backend are resolved by name and validated
// against each other before anything is generated, and the one place the
// program mentions concrete element types is the three-way dispatch in
// newSession. Everything downstream is generic.

// session is the untyped face of a typedSession, letting the subcommands
// ignore the dataset's element type.
type session interface {
	describe() string
	numWindows() int
	netStats() (refnet.Stats, []struct{ Level, Count int })
	distanceSample(samples int) []float64
	runQuery(opts queryOpts) (string, error)
	// newServer builds the long-lived serving state behind `subseqctl
	// serve` (see serve.go): the live store, streaming pool and HTTP
	// handlers. A non-empty restore path restores the store from a
	// snapshot (validated against this session's spec) instead of
	// indexing the generated dataset.
	newServer(spec registry.ServerSpec, restore string) (queryServer, error)
}

// queryOpts carries the query subcommand's flags.
type queryOpts struct {
	typ     string
	eps     float64
	qlen    int
	rate    float64
	queries int
	workers int
	seed    uint64
}

// typedSession binds a resolved spec to its generated dataset and measure.
type typedSession[E any] struct {
	spec    registry.SessionSpec
	minfo   registry.MeasureInfo
	backend registry.BackendInfo
	lambda0 int
	measure dist.Measure[E]
	ds      data.Dataset[E]
	mutate  func(rng *rand.Rand, e E) E
}

func newSession(spec registry.SessionSpec) (session, error) {
	di, err := registry.DatasetByName(spec.Dataset)
	if err != nil {
		return nil, err
	}
	switch di.Elem {
	case "byte":
		return buildSession[byte](spec)
	case "float64":
		return buildSession[float64](spec)
	case "point2":
		return buildSession[seq.Point2](spec)
	default:
		return nil, fmt.Errorf("dataset %q has unsupported element type %q", di.Name, di.Elem)
	}
}

func buildSession[E any](spec registry.SessionSpec) (session, error) {
	if spec.WindowLen == 0 {
		spec.WindowLen = 20
	}
	if spec.WindowLen < 2 {
		return nil, fmt.Errorf("window length must be at least 2, got %d", spec.WindowLen)
	}
	_, mi, bi, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	m, err := registry.Measure[E](mi.Name)
	if err != nil {
		return nil, err
	}
	lambda0, err := spec.Lambda0For(mi)
	if err != nil {
		return nil, err
	}
	ds, err := registry.GenerateDataset[E](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
	if err != nil {
		return nil, err
	}
	if spec.Sharded() {
		// One shard of the logical index: generation is deterministic per
		// (dataset, windows, window_len, seed), so every shard process
		// derives the same logical whole and keeps only its slice of whole
		// sequences. Matches never span sequences, which is what makes the
		// scatter-gather merge exact (see internal/shard). Wire-level
		// sequence IDs are re-based by ShardLo in serve.go, so shards
		// report global numbering.
		if spec.ShardHi > len(ds.Sequences) {
			return nil, fmt.Errorf("shard range [%d,%d) exceeds the dataset's %d sequences (windows=%d at windowlen=%d generates %d sequences)",
				spec.ShardLo, spec.ShardHi, len(ds.Sequences), spec.Windows, spec.WindowLen, len(ds.Sequences))
		}
		ds.Sequences = ds.Sequences[spec.ShardLo:spec.ShardHi]
		ds.Windows = seq.PartitionAll(ds.Sequences, spec.WindowLen)
	}
	mut, err := registry.QueryMutator[E](spec.Dataset)
	if err != nil {
		return nil, err
	}
	return &typedSession[E]{
		spec: spec, minfo: mi, backend: bi, lambda0: lambda0,
		measure: m, ds: ds, mutate: mut,
	}, nil
}

func (s *typedSession[E]) describe() string {
	d := fmt.Sprintf("dataset=%s windows=%d measure=%s backend=%s lambda=%d lambda0=%d",
		s.spec.Dataset, len(s.ds.Windows), s.minfo.Name, s.backend.Name,
		2*s.spec.WindowLen, s.lambda0)
	if s.spec.Sharded() {
		d += fmt.Sprintf(" shard=[%d,%d)", s.spec.ShardLo, s.spec.ShardHi)
	}
	return d
}

func (s *typedSession[E]) numWindows() int { return len(s.ds.Windows) }

func (s *typedSession[E]) netStats() (refnet.Stats, []struct{ Level, Count int }) {
	net := refnet.New(func(a, b seq.Window[E]) float64 { return s.measure.Fn(a.Data, b.Data) })
	for _, w := range s.ds.Windows {
		net.Insert(w)
	}
	return net.Stats(), net.LevelHistogram()
}

func (s *typedSession[E]) distanceSample(samples int) []float64 {
	return stats.SampleDistances(s.ds.Windows,
		func(a, b seq.Window[E]) float64 { return s.measure.Fn(a.Data, b.Data) }, samples, 1)
}

func (s *typedSession[E]) config() core.Config {
	return core.Config{
		Params: core.Params{Lambda: 2 * s.spec.WindowLen, Lambda0: s.lambda0},
		Index:  s.backend.Kind,
	}
}

func (s *typedSession[E]) matcher() (*core.Matcher[E], error) {
	return core.NewMatcher(s.measure, s.config(), s.ds.Sequences)
}

// store builds the live, mutable serving store over the generated
// dataset (see internal/store: same matcher underneath, plus the
// append/retire/snapshot lifecycle behind `subseqctl serve`'s admin
// endpoints).
func (s *typedSession[E]) store() (*store.Store[E], error) {
	return store.New(s.measure, s.config(), s.ds.Sequences)
}

// runQuery answers opts.queries generated queries. A single query takes the
// sequential per-query path; several take the batched engine (one shared
// index traversal per chunk); several with opts.workers > 1 fan the batch
// over a QueryPool.
func (s *typedSession[E]) runQuery(opts queryOpts) (string, error) {
	mt, err := s.matcher()
	if err != nil {
		return "", err
	}
	if opts.queries < 1 {
		opts.queries = 1
	}
	qs := make([]seq.Sequence[E], opts.queries)
	for i := range qs {
		qs[i] = data.RandomQuery(s.ds, opts.qlen, opts.rate, s.mutate, opts.seed+uint64(i))
	}
	var pool *core.QueryPool[E]
	mode := "sequential"
	if opts.workers > 1 {
		pool = core.NewQueryPool(mt, opts.workers)
		mode = fmt.Sprintf("pool(%d workers)", pool.Workers())
	} else if opts.queries > 1 {
		mode = "batched"
	}

	start := time.Now()
	var b strings.Builder
	switch canonicalQueryType(opts.typ) {
	case "filter":
		var hits [][]core.Hit[E]
		switch {
		case pool != nil:
			hits = pool.FilterHits(qs, opts.eps)
		default:
			hits = mt.FilterHitsBatch(qs, opts.eps)
		}
		total := 0
		for _, h := range hits {
			total += len(h)
		}
		fmt.Fprintf(&b, "filter: %d segment-window hits at eps=%g over %d queries",
			total, opts.eps, len(qs))
	case "findall":
		var ms [][]core.Match
		switch {
		case pool != nil:
			ms = pool.FindAll(qs, opts.eps)
		case len(qs) > 1:
			ms = mt.FindAllBatch(qs, opts.eps)
		default:
			ms = [][]core.Match{mt.FindAll(qs[0], opts.eps)}
		}
		total := 0
		for _, m := range ms {
			total += len(m)
		}
		fmt.Fprintf(&b, "type I (findall): %d similar pairs at eps=%g over %d queries",
			total, opts.eps, len(qs))
	case "longest":
		var ms []core.Match
		var found []bool
		switch {
		case pool != nil:
			ms, found = pool.Longest(qs, opts.eps)
		case len(qs) > 1:
			ms, found = mt.LongestBatch(qs, opts.eps)
		default:
			m, ok := mt.Longest(qs[0], opts.eps)
			ms, found = []core.Match{m}, []bool{ok}
		}
		n, best := 0, core.Match{}
		for i, ok := range found {
			if ok {
				n++
				if ms[i].QLen() > best.QLen() {
					best = ms[i]
				}
			}
		}
		fmt.Fprintf(&b, "type II (longest): %d/%d queries matched within eps=%g", n, len(qs), opts.eps)
		if n > 0 {
			fmt.Fprintf(&b, "; longest %v", best)
		}
	case "nearest":
		nopts := core.NearestOptions{EpsMax: opts.eps, EpsInc: opts.eps / 16}
		var ms []core.Match
		var found []bool
		if pool != nil {
			ms, found = pool.Nearest(qs, nopts)
		} else {
			// Type III shares no traversal across queries, so there is no
			// batched path to report.
			mode = "sequential"
			ms, found = make([]core.Match, len(qs)), make([]bool, len(qs))
			for i, q := range qs {
				ms[i], found[i] = mt.Nearest(q, nopts)
			}
		}
		n := 0
		var nearest core.Match
		first := true
		for i, ok := range found {
			if ok {
				n++
				if first || ms[i].Dist < nearest.Dist {
					nearest, first = ms[i], false
				}
			}
		}
		fmt.Fprintf(&b, "type III (nearest): %d/%d queries matched within eps=%g", n, len(qs), opts.eps)
		if n > 0 {
			fmt.Fprintf(&b, "; nearest %v", nearest)
		}
	default:
		return "", fmt.Errorf("unknown query type %q (want findall, longest, nearest or filter; aliases I, II, III)", opts.typ)
	}
	fmt.Fprintf(&b, "\n%s in %v (filter calls %d, verify calls %d)",
		mode, time.Since(start).Round(time.Millisecond),
		mt.FilterDistanceCalls(), mt.VerifyDistanceCalls())
	return b.String(), nil
}

// canonicalQueryType maps the paper's numeral names onto the verb names.
func canonicalQueryType(typ string) string {
	switch typ {
	case "I", "i":
		return "findall"
	case "II", "ii":
		return "longest"
	case "III", "iii":
		return "nearest"
	default:
		return typ
	}
}
