package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// The retry helper rides out transient shedding: two 429s with
// Retry-After, then success.
func TestRetryClientRecoversFromShedding(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c := &retryClient{attempts: 4, backoff: time.Millisecond, maxBackoff: 5 * time.Millisecond}
	resp, err := c.postJSON(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

// The attempt budget bounds the retries, and the last shed response is
// surfaced (status and body intact), not swallowed.
func TestRetryClientBoundedAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"shutting down"}`)
	}))
	defer ts.Close()

	c := &retryClient{attempts: 3, backoff: time.Millisecond, maxBackoff: 2 * time.Millisecond}
	resp, err := c.postJSON(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the last 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"error":"shutting down"}` {
		t.Fatalf("last response body lost: %q", body)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want exactly the budget of 3", n)
	}
}

// Definitive errors (here a 400) pass through on the first attempt —
// retrying a malformed request would never help.
func TestRetryClientNoRetryOnDefinitiveError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	c := &retryClient{attempts: 5, backoff: time.Millisecond}
	resp, err := c.postJSON(context.Background(), ts.URL, []byte(`not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || calls.Load() != 1 {
		t.Fatalf("status %d after %d calls, want 400 after 1", resp.StatusCode, calls.Load())
	}
}

// A cancelled context stops the retry loop between attempts.
func TestRetryClientHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := &retryClient{attempts: 100, backoff: 10 * time.Millisecond, maxBackoff: 10 * time.Millisecond}
	if _, err := c.postJSON(ctx, ts.URL, []byte(`{}`)); err == nil {
		t.Fatal("expected a context error, got a response")
	}
}
