package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/shard"
)

// subseqctl gateway: the scatter-gather front end over a shard fleet.
// Each shard is an ordinary `subseqctl serve` process hosting one slice
// of the logical database (shard_lo/shard_hi on its session spec); the
// gateway fans every query out to all of them through the bounded-retry
// client and merges the answers deterministically (internal/shard), so a
// client sees one index — bit-identical to a single node over the same
// windows — plus a "degradation" block naming any shard that could not
// answer. docs/SHARDING.md documents the topology end to end.

// defaultGatewayAddr deliberately differs from registry.DefaultServeAddr
// so a gateway and a shard can share a host with no flags.
const defaultGatewayAddr = "127.0.0.1:8090"

func cmdGateway(args []string) {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", defaultGatewayAddr, "TCP listen address (host:port; :0 picks a free port)")
	var shards stringList
	fs.Var(&shards, "shard", "base URL of one shard serve process, e.g. http://127.0.0.1:8077 (repeatable, in shard order)")
	ranges := fs.String("ranges", "", `comma-separated lo-hi sequence ranges, one per -shard in order (e.g. "0-3,3-6"); empty discovers the plan from each shard's /stats`)
	attempts := fs.Int("attempts", 4, "per-shard request attempts (retries on 429/503 and transport errors)")
	fs.Parse(args)
	if len(shards) == 0 {
		fail(errors.New("gateway needs at least one -shard URL"))
	}
	rc := &retryClient{attempts: *attempts}
	get := func(ctx context.Context, url string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		return http.DefaultClient.Do(req)
	}
	var plan shard.Plan
	var err error
	if *ranges != "" {
		plan, err = planFromFlag(*ranges)
	} else {
		plan, err = discoverPlan(shards, get)
	}
	if err != nil {
		fail(err)
	}
	gw, err := shard.NewGateway(plan, shards, shard.WithPost(rc.postJSON), shard.WithGet(get))
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	for i, r := range plan.Ranges {
		fmt.Printf("subseqctl: gateway shard %d %s at %s\n", i, r, strings.TrimRight(shards[i], "/"))
	}
	fmt.Printf("subseqctl: gateway over %d shards (%d sequences) on http://%s\n",
		len(plan.Ranges), plan.Seqs, ln.Addr())
	hs := &http.Server{Handler: gw.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-done
	fmt.Println("subseqctl: gateway shut down")
}

// planFromFlag parses the -ranges flag ("0-3,3-6") into a validated plan;
// the total sequence count is the last range's hi.
func planFromFlag(s string) (shard.Plan, error) {
	parts := strings.Split(s, ",")
	rs := make([]shard.Range, len(parts))
	for i, p := range parts {
		lo, hi, ok := strings.Cut(strings.TrimSpace(p), "-")
		if !ok {
			return shard.Plan{}, fmt.Errorf("-ranges entry %q is not lo-hi", p)
		}
		var err error
		if rs[i].Lo, err = strconv.Atoi(lo); err != nil {
			return shard.Plan{}, fmt.Errorf("-ranges entry %q: %w", p, err)
		}
		if rs[i].Hi, err = strconv.Atoi(hi); err != nil {
			return shard.Plan{}, fmt.Errorf("-ranges entry %q: %w", p, err)
		}
	}
	numSeqs := rs[len(rs)-1].Hi
	return shard.PlanFromRanges(numSeqs, rs)
}

// shardProbe is the slice of a shard's /stats the gateway needs to learn
// the topology: the shard range its session was configured with, and the
// store's sequence count as a fallback for unsharded fleets.
type shardProbe struct {
	Config struct {
		ShardLo int `json:"shard_lo"`
		ShardHi int `json:"shard_hi"`
	} `json:"config"`
	Store struct {
		Sequences int `json:"sequences"`
	} `json:"store"`
}

// discoverPlan learns the partition from the shards themselves: each
// serve process echoes its shard_lo/shard_hi on /stats, so a correctly
// configured fleet describes its own plan (and a misconfigured one —
// gaps, overlaps, out-of-order URLs — is rejected by the same validation
// a -ranges flag gets). A fleet of unsharded sessions is stacked instead:
// shard i owns the next Sequences-sized block, which matches how a
// gateway over independent stores would number them.
func discoverPlan(urls []string, get shard.GetFunc) (shard.Plan, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	probes := make([]shardProbe, len(urls))
	for i, u := range urls {
		res, err := get(ctx, strings.TrimRight(u, "/")+"/stats")
		if err != nil {
			return shard.Plan{}, fmt.Errorf("discovering plan: shard %d (%s): %w", i, u, err)
		}
		b, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
		res.Body.Close()
		if err != nil {
			return shard.Plan{}, fmt.Errorf("discovering plan: shard %d (%s): %w", i, u, err)
		}
		if res.StatusCode != http.StatusOK {
			return shard.Plan{}, fmt.Errorf("discovering plan: shard %d (%s): HTTP %d", i, u, res.StatusCode)
		}
		if err := json.Unmarshal(b, &probes[i]); err != nil {
			return shard.Plan{}, fmt.Errorf("discovering plan: shard %d (%s): %w", i, u, err)
		}
	}
	sharded := 0
	for _, p := range probes {
		if p.Config.ShardHi > 0 {
			sharded++
		}
	}
	switch {
	case sharded == len(probes):
		rs := make([]shard.Range, len(probes))
		for i, p := range probes {
			rs[i] = shard.Range{Lo: p.Config.ShardLo, Hi: p.Config.ShardHi}
		}
		return shard.PlanFromRanges(rs[len(rs)-1].Hi, rs)
	case sharded == 0:
		rs := make([]shard.Range, len(probes))
		lo := 0
		for i, p := range probes {
			rs[i] = shard.Range{Lo: lo, Hi: lo + p.Store.Sequences}
			lo = rs[i].Hi
		}
		return shard.PlanFromRanges(lo, rs)
	default:
		return shard.Plan{}, fmt.Errorf(
			"discovering plan: %d of %d shards declare a shard range and the rest do not; mixed fleets are ambiguous (give -ranges explicitly)",
			sharded, len(probes))
	}
}
