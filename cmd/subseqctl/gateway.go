package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/shard"
)

// subseqctl gateway: the scatter-gather front end over a shard fleet.
// Each shard is an ordinary `subseqctl serve` process hosting one slice
// of the logical database (shard_lo/shard_hi on its session spec); the
// gateway fans every query out over all ranges through the bounded-retry
// client and merges the answers deterministically (internal/shard), so a
// client sees one index — bit-identical to a single node over the same
// windows — plus a "degradation" block naming any range that could not
// answer. With -replicas N, consecutive -shard URLs form replica sets:
// each range is served by N interchangeable processes, routed by
// per-replica circuit breakers with background health probing, failover
// on error and an optional hedged second read (-hedge-after) — one
// replica loss is then masked entirely. Merged answers are kept in a
// bounded result cache (-cache-size/-cache-ttl) keyed by endpoint,
// shard-plan epoch and canonical body; /admin/append, /admin/retire and
// /admin/snapshot are accepted too, fanned out to every replica of the
// owning range with quorum accounting, and every acknowledged write
// bumps the epoch — invalidating the whole cache so no stale answer can
// be served. docs/SHARDING.md documents the topology end to end.

// defaultGatewayAddr deliberately differs from registry.DefaultServeAddr
// so a gateway and a shard can share a host with no flags.
const defaultGatewayAddr = "127.0.0.1:8090"

func cmdGateway(args []string) {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", defaultGatewayAddr, "TCP listen address (host:port; :0 picks a free port)")
	var shards stringList
	fs.Var(&shards, "shard", "base URL of one shard serve process, e.g. http://127.0.0.1:8077 (repeatable, in shard order; with -replicas N, N consecutive URLs form one range's replica set, or give one comma-separated list per range)")
	ranges := fs.String("ranges", "", `comma-separated lo-hi sequence ranges, one per shard range in order (e.g. "0-3,3-6"); empty discovers the plan from each shard's /stats`)
	attempts := fs.Int("attempts", 4, "per-request attempts against one replica (retries on 429/503 and transport errors)")
	replicasPerRange := fs.Int("replicas", 1, "replicas per shard range: consecutive -shard URLs are grouped N at a time")
	hedgeAfter := fs.Duration("hedge-after", 100*time.Millisecond, "launch a hedged read to another replica when the first has been in flight this long (0 disables hedging)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "background health-probe period per replica (0 disables probing)")
	cacheSize := fs.Int64("cache-size", 64<<20, "result-cache byte budget for merged answers (0 disables the cache)")
	cacheTTL := fs.Duration("cache-ttl", time.Minute, "result-cache entry TTL; writes through the gateway invalidate regardless, the TTL only bounds staleness from mutations that bypass it (0 keeps entries until eviction or invalidation)")
	fs.Parse(args)
	if len(shards) == 0 {
		fail(errors.New("gateway needs at least one -shard URL"))
	}
	groups, err := replicaGroups(shards, *replicasPerRange)
	if err != nil {
		fail(err)
	}
	rc := &retryClient{attempts: *attempts}
	get := func(ctx context.Context, url string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		return http.DefaultClient.Do(req)
	}
	var plan shard.Plan
	if *ranges != "" {
		plan, err = planFromFlag(*ranges)
	} else {
		plan, err = discoverPlan(groups, get)
	}
	if err != nil {
		fail(err)
	}
	gw, err := shard.NewReplicatedGateway(plan, groups,
		shard.WithPost(rc.postJSON), shard.WithGet(get),
		shard.WithHedgeAfter(*hedgeAfter), shard.WithProbeInterval(*probeInterval),
		shard.WithCache(*cacheSize, *cacheTTL))
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	for i, r := range plan.Ranges {
		fmt.Printf("subseqctl: gateway shard %d %s at %s\n", i, r, strings.Join(gw.Replicas()[i], ", "))
	}
	if *cacheSize > 0 {
		fmt.Printf("subseqctl: gateway result cache %d bytes, ttl %s\n", *cacheSize, *cacheTTL)
	}
	fmt.Printf("subseqctl: gateway over %d shards (%d sequences) on http://%s\n",
		len(plan.Ranges), plan.Seqs, ln.Addr())
	stopProbing := gw.StartProbing()
	hs := &http.Server{Handler: gw.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-done
	stopProbing()
	fmt.Println("subseqctl: gateway shut down")
}

// replicaGroups turns the flat -shard list into per-range replica sets.
// Two spellings are accepted: with -replicas N, consecutive entries are
// chunked N at a time (so the list length must be a multiple of N); or
// each entry is itself a comma-separated replica list for one range
// (then -replicas must stay 1, the grouping being explicit already).
func replicaGroups(entries []string, n int) ([][]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("-replicas must be at least 1, got %d", n)
	}
	var groups [][]string
	explicit := false
	for _, e := range entries {
		if strings.Contains(e, ",") {
			explicit = true
		}
	}
	if explicit {
		if n != 1 {
			return nil, errors.New("give replicas either via -replicas N or as comma-separated -shard entries, not both")
		}
		for i, e := range entries {
			var set []string
			for _, u := range strings.Split(e, ",") {
				u = strings.TrimSpace(u)
				if u == "" {
					return nil, fmt.Errorf("-shard entry %d has an empty replica URL", i)
				}
				set = append(set, u)
			}
			groups = append(groups, set)
		}
		return groups, nil
	}
	if len(entries)%n != 0 {
		return nil, fmt.Errorf("%d -shard URLs do not divide into replica sets of %d", len(entries), n)
	}
	for i := 0; i < len(entries); i += n {
		groups = append(groups, append([]string(nil), entries[i:i+n]...))
	}
	return groups, nil
}

// planFromFlag parses the -ranges flag ("0-3,3-6") into a validated plan;
// the total sequence count is the last range's hi.
func planFromFlag(s string) (shard.Plan, error) {
	parts := strings.Split(s, ",")
	rs := make([]shard.Range, len(parts))
	for i, p := range parts {
		lo, hi, ok := strings.Cut(strings.TrimSpace(p), "-")
		if !ok {
			return shard.Plan{}, fmt.Errorf("-ranges entry %q is not lo-hi", p)
		}
		var err error
		if rs[i].Lo, err = strconv.Atoi(lo); err != nil {
			return shard.Plan{}, fmt.Errorf("-ranges entry %q: %w", p, err)
		}
		if rs[i].Hi, err = strconv.Atoi(hi); err != nil {
			return shard.Plan{}, fmt.Errorf("-ranges entry %q: %w", p, err)
		}
	}
	numSeqs := rs[len(rs)-1].Hi
	return shard.PlanFromRanges(numSeqs, rs)
}

// shardProbe is the slice of a shard's /stats the gateway needs to learn
// the topology: the shard range its session was configured with, and the
// store's sequence count as a fallback for unsharded fleets.
type shardProbe struct {
	Config struct {
		ShardLo int `json:"shard_lo"`
		ShardHi int `json:"shard_hi"`
	} `json:"config"`
	Store struct {
		Sequences int `json:"sequences"`
	} `json:"store"`
}

// parseProbe decodes one /stats body into the topology slice.
func parseProbe(body []byte) (shardProbe, error) {
	var p shardProbe
	if err := json.Unmarshal(body, &p); err != nil {
		return shardProbe{}, err
	}
	if p.Config.ShardHi < 0 || p.Config.ShardLo < 0 || p.Store.Sequences < 0 {
		return shardProbe{}, errors.New("negative shard range or sequence count")
	}
	return p, nil
}

// planFromProbes assembles the fleet's plan from one probe per range:
// either every range declares its shard_lo/shard_hi (a sharded fleet,
// validated exactly like an explicit -ranges flag) or none does (an
// unsharded fleet, stacked by store size). Mixed fleets are ambiguous.
func planFromProbes(probes []shardProbe) (shard.Plan, error) {
	sharded := 0
	for _, p := range probes {
		if p.Config.ShardHi > 0 {
			sharded++
		}
	}
	switch {
	case sharded == len(probes) && len(probes) > 0:
		rs := make([]shard.Range, len(probes))
		for i, p := range probes {
			rs[i] = shard.Range{Lo: p.Config.ShardLo, Hi: p.Config.ShardHi}
		}
		return shard.PlanFromRanges(rs[len(rs)-1].Hi, rs)
	case sharded == 0 && len(probes) > 0:
		rs := make([]shard.Range, len(probes))
		lo := 0
		for i, p := range probes {
			rs[i] = shard.Range{Lo: lo, Hi: lo + p.Store.Sequences}
			lo = rs[i].Hi
		}
		return shard.PlanFromRanges(lo, rs)
	case len(probes) == 0:
		return shard.Plan{}, errors.New("no shards to discover a plan from")
	default:
		return shard.Plan{}, fmt.Errorf(
			"%d of %d shards declare a shard range and the rest do not; mixed fleets are ambiguous (give -ranges explicitly)",
			sharded, len(probes))
	}
}

// discoverPlan learns the partition from the fleet itself: each serve
// process echoes its shard_lo/shard_hi on /stats, so a correctly
// configured fleet describes its own plan (and a misconfigured one —
// gaps, overlaps, out-of-order URLs — is rejected by the same validation
// a -ranges flag gets). Within a replica set the first answering replica
// speaks for the range, but every replica that does answer must agree —
// replicas serving different slices under one range is a deployment
// error worth failing on. A fleet of unsharded sessions is stacked
// instead: range i owns the next Sequences-sized block, which matches
// how a gateway over independent stores would number them.
func discoverPlan(groups [][]string, get shard.GetFunc) (shard.Plan, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	probes := make([]shardProbe, len(groups))
	for i, set := range groups {
		var got []shardProbe
		var errs []string
		for j, u := range set {
			p, err := fetchProbe(ctx, strings.TrimRight(u, "/"), get)
			if err != nil {
				errs = append(errs, fmt.Sprintf("replica %d (%s): %v", j, u, err))
				continue
			}
			got = append(got, p)
		}
		if len(got) == 0 {
			return shard.Plan{}, fmt.Errorf("discovering plan: shard %d: no replica answered: %s", i, strings.Join(errs, "; "))
		}
		for _, p := range got[1:] {
			if p != got[0] {
				return shard.Plan{}, fmt.Errorf("discovering plan: shard %d: replicas disagree on their range/store (%+v vs %+v)", i, got[0], p)
			}
		}
		probes[i] = got[0]
	}
	plan, err := planFromProbes(probes)
	if err != nil {
		return shard.Plan{}, fmt.Errorf("discovering plan: %w", err)
	}
	return plan, nil
}

// fetchProbe GETs one replica's /stats and decodes the topology slice.
func fetchProbe(ctx context.Context, base string, get shard.GetFunc) (shardProbe, error) {
	res, err := get(ctx, base+"/stats")
	if err != nil {
		return shardProbe{}, err
	}
	b, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	res.Body.Close()
	if err != nil {
		return shardProbe{}, err
	}
	if res.StatusCode != http.StatusOK {
		return shardProbe{}, fmt.Errorf("HTTP %d", res.StatusCode)
	}
	return parseProbe(b)
}
