package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/registry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestListGolden pins the `subseqctl list` output: the full measure ×
// backend capability matrix is a documented surface (docs/CLI.md embeds
// it), so changes to it must be deliberate. Run with -update to accept a
// new registry state.
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	renderList(&buf)
	golden := filepath.Join("testdata", "list.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/subseqctl -run TestListGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("`subseqctl list` output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}

	// docs/CLI.md embeds the same matrix in a fenced block; keep the copy
	// honest so a registry change cannot silently stale the documentation.
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "CLI.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(doc, bytes.TrimRight(buf.Bytes(), "\n")) {
		t.Error("docs/CLI.md no longer embeds the current `subseqctl list` output; update its fenced matrix block")
	}
}

// TestNewSessionErrors verifies the CLI surfaces registry resolution
// errors rather than building a broken session.
func TestNewSessionErrors(t *testing.T) {
	for _, spec := range []struct{ dataset, measure, backend string }{
		{"genomes", "", "refnet"},
		{"proteins", "frobnicate", "refnet"},
		{"songs", "dtw", "refnet"},
		{"proteins", "erp", "refnet"},
	} {
		s := newSpec(spec.dataset, spec.measure, spec.backend)
		if _, err := newSession(s); err == nil {
			t.Errorf("newSession(%+v) succeeded; want error", spec)
		}
	}
	if _, err := newSession(newSpec("proteins", "", "refnet")); err != nil {
		t.Errorf("default proteins session failed: %v", err)
	}
}

// TestQueryTypes runs each query type (and numeral alias) through a tiny
// session, sequential, batched and pooled.
func TestQueryTypes(t *testing.T) {
	s, err := newSession(newSpec("proteins", "levenshtein-fast", "refnet"))
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{"findall", "longest", "nearest", "filter", "I", "II", "III"} {
		for _, mode := range []struct{ queries, workers int }{{1, 1}, {3, 1}, {3, 2}} {
			out, err := s.runQuery(queryOpts{
				typ: typ, eps: 3, qlen: 18, rate: 0.1,
				queries: mode.queries, workers: mode.workers, seed: 5,
			})
			if err != nil {
				t.Fatalf("type %q (queries=%d workers=%d): %v", typ, mode.queries, mode.workers, err)
			}
			if out == "" {
				t.Fatalf("type %q: empty report", typ)
			}
		}
	}
	if _, err := s.runQuery(queryOpts{typ: "IV", eps: 1, qlen: 18, queries: 1}); err == nil {
		t.Error("unknown query type accepted")
	}
}

func newSpec(dataset, measure, backend string) (s registry.SessionSpec) {
	s.Dataset = dataset
	s.Measure = measure
	s.Backend = backend
	s.Windows = 30
	s.WindowLen = 6
	s.Seed = 3
	return s
}
