package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/registry"
)

// --- Cache equivalence: the result cache must be invisible except in
// latency. The same query stream replayed against two gateways over the
// SAME serving fleet — one with the cache on, one with it off — must
// produce byte-identical responses, on all four backends, for every
// query kind, and keep doing so across an /admin/append + /admin/retire
// invalidation boundary driven through the cached gateway itself. The
// uncached gateway cannot be stale by construction (every read scatters
// to the shards), so byte equality after a mutation proves the cached
// gateway invalidated. ---

// postRaw posts a body and returns the verbatim response bytes — the
// unit of comparison here, since the cache stores and replays bytes.
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading response: %v", path, err)
	}
	return resp.StatusCode, b
}

// startGatewayPair builds one replicated serving fleet (n replicas per
// plan range, real serving stacks) and two gateways over it: the first
// with the result cache enabled, the second without.
func startGatewayPair(t *testing.T, base registry.SessionSpec, plan shard.Plan, n int) (cached, uncached *shard.Gateway, cachedTS, uncachedTS *httptest.Server) {
	t.Helper()
	groups := make([][]string, len(plan.Ranges))
	for i, r := range plan.Ranges {
		for j := 0; j < n; j++ {
			spec := base
			spec.ShardLo, spec.ShardHi = r.Lo, r.Hi
			ts, _ := newTestServerSpec(t, registry.ServerSpec{SessionSpec: spec, Workers: 2, QueueDepth: 16}, "")
			groups[i] = append(groups[i], ts.URL)
		}
	}
	cached, err := shard.NewReplicatedGateway(plan, groups, shard.WithCache(64<<20, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	uncached, err = shard.NewReplicatedGateway(plan, groups)
	if err != nil {
		t.Fatal(err)
	}
	cachedTS = httptest.NewServer(cached.Handler())
	t.Cleanup(cachedTS.Close)
	uncachedTS = httptest.NewServer(uncached.Handler())
	t.Cleanup(uncachedTS.Close)
	return cached, uncached, cachedTS, uncachedTS
}

func TestGatewayCacheEquivalenceAllBackends(t *testing.T) {
	for _, backend := range []string{"refnet", "covertree", "mv", "linear"} {
		t.Run(backend, func(t *testing.T) {
			spec := newSpec("proteins", "levenshtein-fast", backend)
			spec.Windows = equivWindows
			ds, err := registry.GenerateDataset[byte](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
			if err != nil {
				t.Fatal(err)
			}
			numSeqs := len(ds.Sequences)
			plan, err := shard.Partition(numSeqs, 2)
			if err != nil {
				t.Fatal(err)
			}
			mt, _, err := registry.NewMatcher[byte](spec)
			if err != nil {
				t.Fatal(err)
			}
			cached, _, cachedTS, uncachedTS := startGatewayPair(t, spec, plan, 2)

			// The stream: every query kind over a small hot set, so the
			// cache actually gets hits when the stream replays.
			queries := []string{
				string(ds.Sequences[0][:16]),
				string(ds.Sequences[numSeqs-1][:16]),
				strings.Repeat("WYAC", 5),
			}
			type request struct{ path, body string }
			var stream []request
			for _, q := range queries {
				body := fmt.Sprintf(`{"query":%q,"eps":2}`, q)
				stream = append(stream,
					request{"/query/findall", body},
					request{"/query/filter", body},
					request{"/query/longest", body},
					request{"/query/nearest", fmt.Sprintf(`{"query":%q,"eps_max":2}`, q)},
				)
			}
			qjson := make([]string, len(queries))
			for i, q := range queries {
				qjson[i] = fmt.Sprintf("%q", q)
			}
			stream = append(stream, request{"/query/batch",
				fmt.Sprintf(`{"kind":"findall","queries":[%s],"eps":2}`, strings.Join(qjson, ","))})

			// replay runs the stream twice (misses, then hits) against both
			// gateways and demands byte equality on every response.
			replay := func(phase string) {
				t.Helper()
				for pass := 0; pass < 2; pass++ {
					for _, rq := range stream {
						cs, cb := postRaw(t, cachedTS, rq.path, rq.body)
						us, ub := postRaw(t, uncachedTS, rq.path, rq.body)
						if cs != http.StatusOK || us != http.StatusOK {
							t.Fatalf("%s: %s answered %d cached / %d uncached", phase, rq.path, cs, us)
						}
						if !bytes.Equal(cb, ub) {
							t.Fatalf("%s: %s %s: cache on and off disagree:\n  cached:   %s\n  uncached: %s",
								phase, rq.path, rq.body, cb, ub)
						}
					}
				}
			}
			replay("pre-mutation")

			// Mutation boundary, driven through the CACHED gateway: append a
			// copy of sequence 0 (its queries gain exact matches — a stale
			// cached answer would be detectable), then retire it again.
			refID, _, err := mt.AppendSequence(ds.Sequences[0])
			if err != nil {
				t.Fatal(err)
			}
			status, b := postRaw(t, cachedTS, "/admin/append",
				`{"sequence":`+string(mustMarshal(t, string(ds.Sequences[0])))+`}`)
			if status != http.StatusOK {
				t.Fatalf("append: %d: %s", status, b)
			}
			var ar shard.AdminFanoutResponse
			if err := json.Unmarshal(b, &ar); err != nil {
				t.Fatal(err)
			}
			if ar.Acks != 2 || !ar.Quorum || ar.Diverged || ar.Epoch != 1 {
				t.Fatalf("append fan-out: %+v", ar)
			}
			if ar.SeqID == nil || *ar.SeqID != refID {
				t.Fatalf("fleet allocated seq %v, single node %d", ar.SeqID, refID)
			}
			replay("post-append")

			// And the cached gateway's answer is the mutated single node's,
			// not just the uncached gateway's — staleness cannot hide in a
			// shared blind spot.
			var fa shard.MatchesResponse
			if code := postJSON(t, cachedTS, "/query/findall",
				fmt.Sprintf(`{"query":%q,"eps":2}`, queries[0]), &fa); code != http.StatusOK {
				t.Fatalf("post-append findall status %d", code)
			}
			if want := toShardMatches(mt.FindAll([]byte(queries[0]), 2)); !reflect.DeepEqual(fa.Matches, want) {
				t.Fatalf("post-append: cached gateway %v, single node %v", fa.Matches, want)
			}

			if backend == "covertree" {
				// The cover tree cannot retire: every replica answers 409,
				// the gateway passes it through and invalidates nothing.
				status, b := postRaw(t, cachedTS, "/admin/retire", fmt.Sprintf(`{"seq_id":%d}`, refID))
				if status != http.StatusConflict {
					t.Fatalf("covertree retire: %d, want 409: %s", status, b)
				}
				if e := cached.Epoch(); e != 1 {
					t.Fatalf("refused retire bumped the epoch to %d", e)
				}
			} else {
				if _, err := mt.RetireSequence(refID); err != nil {
					t.Fatal(err)
				}
				status, b := postRaw(t, cachedTS, "/admin/retire", fmt.Sprintf(`{"seq_id":%d}`, refID))
				if status != http.StatusOK {
					t.Fatalf("retire: %d: %s", status, b)
				}
				if err := json.Unmarshal(b, &ar); err != nil {
					t.Fatal(err)
				}
				if ar.Acks != 2 || !ar.Quorum || ar.Epoch != 2 {
					t.Fatalf("retire fan-out: %+v", ar)
				}
				replay("post-retire")
			}

			cs, ok := cached.CacheStats()
			if !ok {
				t.Fatal("cached gateway reports no cache")
			}
			if cs.Hits == 0 {
				t.Fatalf("replayed stream never hit the cache: %+v", cs)
			}
			if cs.Invalidations == 0 {
				t.Fatalf("mutations invalidated nothing: %+v", cs)
			}
		})
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCacheSmokeBinary is the cache end-to-end smoke CI runs via `make
// cache-smoke`: a real 2-ranges × 2-replicas fleet of serve processes
// behind a real gateway started with -cache-size/-cache-ttl. A hot query
// warms the cache (visible as hits on /stats); a retire fanned through
// the gateway's admin surface must reach both replicas, bump the epoch,
// show up in the invalidation counter, and change the hot query's answer
// to the post-write truth — never the cached bytes. Finally the gateway
// shuts down cleanly on SIGTERM.
func TestCacheSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := buildSubseqctl(t)
	spec := newSpec("proteins", "levenshtein-fast", "refnet")
	spec.Windows = equivWindows
	ds, err := registry.GenerateDataset[byte](spec.Dataset, spec.Windows, spec.WindowLen, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	numSeqs := len(ds.Sequences)
	cut := numSeqs / 2
	session := func(name string, lo, hi int) string {
		return fmt.Sprintf("name=%s,dataset=proteins,windows=%d,windowlen=%d,seed=%d,shard_lo=%d,shard_hi=%d,workers=2",
			name, spec.Windows, spec.WindowLen, spec.Seed, lo, hi)
	}
	type replica struct {
		cmd  *exec.Cmd
		base string
	}
	var fleet []replica
	for _, s := range []struct {
		name   string
		lo, hi int
	}{
		{"c0a", 0, cut}, {"c0b", 0, cut}, {"c1a", cut, numSeqs}, {"c1b", cut, numSeqs},
	} {
		cmd, base := startServeBinary(t, bin, "-addr", "127.0.0.1:0", "-session", session(s.name, s.lo, s.hi))
		fleet = append(fleet, replica{cmd: cmd, base: base})
	}
	defer func() {
		for _, r := range fleet {
			r.cmd.Process.Kill()
		}
	}()

	gwCmd, gwBase := startBinary(t, bin, "gateway",
		"-addr", "127.0.0.1:0", "-replicas", "2",
		"-cache-size", "8388608", "-cache-ttl", "1m",
		"-probe-interval", "100ms",
		"-shard", fleet[0].base, "-shard", fleet[1].base,
		"-shard", fleet[2].base, "-shard", fleet[3].base)
	defer gwCmd.Process.Kill()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := client.Post(gwBase+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}
	getStats := func() shard.GatewayStatsResponse {
		t.Helper()
		resp, err := client.Get(gwBase + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats shard.GatewayStatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats
	}

	// Warm the hot query. The second answer must come from the cache
	// (hits >= 1 on /stats) and be byte-identical to the first.
	q := string(ds.Sequences[0][:16])
	body := fmt.Sprintf(`{"query":%q,"eps":2}`, q)
	code, first := post("/query/findall", body)
	if code != http.StatusOK {
		t.Fatalf("warm-up findall: %d: %s", code, first)
	}
	code, second := post("/query/findall", body)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Fatalf("hot query changed without a write: %d\n  %s\n  %s", code, first, second)
	}
	stats := getStats()
	if stats.Cache == nil || stats.Cache.Hits < 1 {
		t.Fatalf("hot query never hit the cache: %+v", stats.Cache)
	}
	if stats.Epoch != 0 {
		t.Fatalf("epoch %d before any write", stats.Epoch)
	}

	// Retire sequence 0 — the hot query's own sequence — through the
	// gateway. Both replicas of range 0 must ack, the epoch must bump and
	// the warmed entry must be invalidated.
	code, b := post("/admin/retire", `{"seq_id":0}`)
	if code != http.StatusOK {
		t.Fatalf("retire: %d: %s", code, b)
	}
	var ar shard.AdminFanoutResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Acks != 2 || !ar.Quorum || ar.Epoch != 1 || ar.Invalidated < 1 {
		t.Fatalf("retire fan-out: %+v", ar)
	}

	// The hot query now answers the post-write truth — bit-identical to a
	// single node that retired the same sequence, not the cached bytes.
	mt, _, err := registry.NewMatcher[byte](spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.RetireSequence(0); err != nil {
		t.Fatal(err)
	}
	code, fresh := post("/query/findall", body)
	if code != http.StatusOK {
		t.Fatalf("post-retire findall: %d: %s", code, fresh)
	}
	if bytes.Equal(fresh, first) {
		t.Fatalf("retired sequence still served from cache: %s", fresh)
	}
	var fa shard.MatchesResponse
	if err := json.Unmarshal(fresh, &fa); err != nil {
		t.Fatal(err)
	}
	if want := toShardMatches(mt.FindAll([]byte(q), 2)); !reflect.DeepEqual(fa.Matches, want) {
		t.Fatalf("post-retire: gateway %v, single node %v", fa.Matches, want)
	}
	stats = getStats()
	if stats.Epoch != 1 || stats.Cache == nil || stats.Cache.Invalidations < 1 {
		t.Fatalf("invalidation not visible on /stats: epoch %d, cache %+v", stats.Epoch, stats.Cache)
	}
	if stats.Gateway.Writes != 1 {
		t.Fatalf("writes counter %d after one write", stats.Gateway.Writes)
	}

	// Clean SIGTERM shutdown, same contract as serve.
	stopServeBinary(t, gwCmd)
}
