// Command experiments regenerates the figures of the paper's evaluation
// (Section 8, Figures 4–12) and prints them as aligned tables or CSV.
//
// Usage:
//
//	experiments [-fig all|4|fig04|...] [-size small|paper] [-csv]
//
// -size small (default) runs second-scale workloads; -size paper
// approximates the paper's dataset sizes (100K windows; minutes per
// figure). EXPERIMENTS.md records the expected shapes next to the paper's
// reported results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: all, 4..12, or fig04..fig12")
	sizeStr := flag.String("size", "small", "workload size: small or paper")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	size, err := experiments.ParseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var ids []string
	switch {
	case *fig == "all":
		ids = experiments.IDs()
	case strings.HasPrefix(*fig, "fig"):
		ids = []string{*fig}
	default:
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "invalid -fig %q\n", *fig)
			os.Exit(2)
		}
		ids = []string{fmt.Sprintf("fig%02d", n)}
	}

	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %s\n",
				id, strings.Join(experiments.IDs(), " "))
			os.Exit(2)
		}
		start := time.Now()
		tables := runner(size)
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s: %s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Fprint(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
