# Development targets; `make check` is what CI runs.

GO ?= go
BENCH_DATE ?= $(shell date +%Y-%m-%d)

.PHONY: all build test test-short bench bench-smoke serve-smoke snapshot-smoke shard-smoke replica-smoke cache-smoke chaos-smoke fmt fmt-fix vet check docs-check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# bench runs the index + matcher benchmarks at measurement benchtime and
# emits both artefacts: BENCH_<date>.txt (benchstat-compatible raw output)
# and BENCH_<date>.json (the same numbers, parsed by cmd/benchjson). The
# run covers the refnet kernel-traversal pair (BenchmarkRefnetFilterBatch
# Kernel/PerProbe, whose dist/op metric is the counted filter evaluations)
# and the BatchRange allocs/op benchmark.
bench:
	$(GO) test -bench=. -benchtime=1s -run=^$$ . > BENCH_$(BENCH_DATE).txt || \
		{ cat BENCH_$(BENCH_DATE).txt; rm -f BENCH_$(BENCH_DATE).txt; exit 1; }
	cat BENCH_$(BENCH_DATE).txt
	$(GO) run ./cmd/benchjson < BENCH_$(BENCH_DATE).txt > BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).txt and BENCH_$(BENCH_DATE).json"

# bench-smoke runs every benchmark for a single iteration so CI keeps the
# bench code compiling and executing without paying measurement time.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# serve-smoke is the daemon's end-to-end check: build the real subseqctl
# binary, start `serve` on a synthetic dataset, issue one query per
# endpoint over HTTP, verify every JSON shape and /stats, then shut the
# daemon down gracefully with SIGTERM (TestServeSmokeBinary drives the
# whole flow).
serve-smoke:
	$(GO) test -run TestServeSmokeBinary -count=1 -v ./cmd/subseqctl

# snapshot-smoke is the persistence end-to-end check: build the real
# subseqctl binary, serve, mutate the live index over the admin API,
# snapshot, restart a fresh process with -restore and verify it answers
# byte-identically with zero re-indexing work, then exercise
# -snapshot-on-sigterm (TestSnapshotSmokeBinary drives the whole flow).
snapshot-smoke:
	$(GO) test -run TestSnapshotSmokeBinary -count=1 -v ./cmd/subseqctl

# shard-smoke is the scatter-gather end-to-end check: build the real
# subseqctl binary, start two shard serve processes plus a gateway that
# discovers the partition from their /stats, run per-kind and batch
# queries through the gateway (findall checked bit-identical against the
# library), kill one shard and verify the fleet keeps answering with the
# dead shard named in the degradation block, then shut down gracefully
# (TestShardSmokeBinary drives the whole flow).
shard-smoke:
	$(GO) test -run TestShardSmokeBinary -count=1 -v ./cmd/subseqctl

# replica-smoke is the replication end-to-end check: build the real
# subseqctl binary, start a 2-ranges × 2-replicas fleet behind a gateway
# with hedging and health probing, verify bit-identical answers, kill one
# replica and verify zero degradation, restart it on the same address and
# verify the breaker re-admits it, then shut down gracefully
# (TestReplicaSmokeBinary drives the whole flow).
replica-smoke:
	$(GO) test -run TestReplicaSmokeBinary -count=1 -v ./cmd/subseqctl

# cache-smoke is the result-cache end-to-end check: build the real
# subseqctl binary, start a 2-ranges × 2-replicas fleet behind a gateway
# with the result cache on (-cache-size/-cache-ttl), warm a hot query and
# see it hit on /stats, retire its sequence through the gateway's admin
# fan-out (both replicas ack, epoch bump, invalidation counter), and
# verify the next answer is the post-write truth — never the cached
# bytes (TestCacheSmokeBinary drives the whole flow).
cache-smoke:
	$(GO) test -run TestCacheSmokeBinary -count=1 -v ./cmd/subseqctl

# chaos-smoke drives the fault-injection harness (internal/chaos) under
# the race detector on a CI time budget: worker kills mid-claim, evaluator
# stalls against deadlines, queue slams past depth and cancellation
# storms, asserting no deadlock, no leaked futures and bit-identical
# results for every completed query.
chaos-smoke:
	$(GO) test -race -short -count=1 -timeout 300s -v ./internal/chaos

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; gofmt -d $$out; exit 1; fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

# docs-check keeps the documentation honest: every relative markdown link
# must resolve, and every Example* godoc test must run (and match its
# Output comment).
docs-check:
	$(GO) run ./cmd/mdlinkcheck .
	$(GO) test -run Example ./...

check: fmt vet build test docs-check
