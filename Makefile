# Development targets; `make check` is what CI runs.

GO ?= go

.PHONY: all build test test-short bench fmt fmt-fix vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

check: fmt vet build test
